//! Machine-readable sweep reports: a tiny, dependency-free JSON emitter
//! with byte-stable output.
//!
//! The CI `sweep-regression` job diffs this output against a checked-in
//! golden file, so stability is a contract: keys are emitted in a fixed
//! order, floats use Rust's shortest-roundtrip formatting (identical on
//! every platform), non-finite floats become `null`, and nothing
//! machine- or time-dependent (thread counts, durations) is included.

use crate::stats::{CellOutcome, Stats, SweepSummary};

/// Escapes a string for a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as JSON: shortest-roundtrip decimal, `null` when not
/// finite (JSON has no NaN/Infinity).
#[must_use]
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_owned()
    }
}

fn json_stats(stats: Option<&Stats>, indent: &str) -> String {
    match stats {
        None => "null".to_owned(),
        Some(s) => format!(
            "{{\n{indent}  \"count\": {},\n{indent}  \"min\": {},\n{indent}  \"max\": {},\n{indent}  \"mean\": {},\n{indent}  \"std_dev\": {},\n{indent}  \"median\": {},\n{indent}  \"p90\": {}\n{indent}}}",
            s.count,
            json_f64(s.min),
            json_f64(s.max),
            json_f64(s.mean),
            json_f64(s.std_dev),
            json_f64(s.median),
            json_f64(s.p90),
        ),
    }
}

/// One sweep, ready to serialize: name, seed, per-cell labels/seeds/
/// outcomes, and the aggregate summary.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Report name (e.g. the grid preset that produced it).
    pub name: String,
    /// The sweep's base seed.
    pub base_seed: u64,
    /// One label per cell, in cell order.
    pub labels: Vec<String>,
    /// One seed per cell, in cell order.
    pub seeds: Vec<u64>,
    /// One outcome per cell, in cell order.
    pub outcomes: Vec<CellOutcome>,
    /// The aggregate statistics of `outcomes`.
    pub summary: SweepSummary,
}

impl SweepReport {
    /// Builds a report, computing the summary from the outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `labels`, `seeds` and `outcomes` disagree in length.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        base_seed: u64,
        labels: Vec<String>,
        seeds: Vec<u64>,
        outcomes: Vec<CellOutcome>,
    ) -> Self {
        assert_eq!(labels.len(), outcomes.len(), "one label per cell");
        assert_eq!(seeds.len(), outcomes.len(), "one seed per cell");
        let summary = SweepSummary::aggregate(&outcomes);
        SweepReport {
            name: name.into(),
            base_seed,
            labels,
            seeds,
            outcomes,
            summary,
        }
    }

    /// Serializes the report as stable, 2-space-indented JSON (the
    /// `BENCH_sweep.json` format).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", json_escape(&self.name)));
        out.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        out.push_str(&format!("  \"cells\": {},\n", self.outcomes.len()));
        let s = &self.summary;
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!("    \"converged\": {},\n", s.converged));
        out.push_str(&format!("    \"failures\": {},\n", s.failures));
        out.push_str(&format!("    \"decided\": {},\n", s.decided));
        out.push_str(&format!(
            "    \"rate\": {},\n",
            json_stats(s.rate.as_ref(), "    ")
        ));
        out.push_str(&format!(
            "    \"decision_round\": {},\n",
            json_stats(s.decision_round.as_ref(), "    ")
        ));
        out.push_str(&format!(
            "    \"rounds\": {}\n",
            json_stats(s.rounds.as_ref(), "    ")
        ));
        out.push_str("  },\n");
        out.push_str("  \"cells_detail\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let decision = o
                .decision_round
                .map_or("null".to_owned(), |r| r.to_string());
            out.push_str(&format!(
                "    {{\"index\": {i}, \"label\": \"{}\", \"seed\": {}, \"rate\": {}, \"decision_round\": {decision}, \"rounds\": {}, \"converged\": {}, \"fingerprint\": \"{:016x}\"}}{}\n",
                json_escape(&self.labels[i]),
                self.seeds[i],
                json_f64(o.rate),
                o.rounds,
                o.converged,
                o.fingerprint,
                if i + 1 < self.outcomes.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SweepReport {
        SweepReport::new(
            "unit",
            42,
            vec!["a".into(), "b\"quoted\"".into()],
            vec![1, 2],
            vec![
                CellOutcome {
                    rate: 0.5,
                    decision_round: Some(3),
                    rounds: 3,
                    converged: true,
                    fingerprint: 0xDEAD,
                },
                CellOutcome {
                    rate: f64::NAN,
                    decision_round: None,
                    rounds: 9,
                    converged: false,
                    fingerprint: 0xBEEF,
                },
            ],
        )
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = sample_report();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b, "serialization is deterministic");
        assert!(a.contains("\"name\": \"unit\""));
        assert!(a.contains("b\\\"quoted\\\""));
        assert!(a.contains("\"rate\": null"), "NaN serializes as null");
        assert!(a.contains("\"fingerprint\": \"000000000000dead\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn floats_roundtrip_shortest() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.0 / 3.0), "0.3333333333333333");
    }

    #[test]
    fn summary_matches_outcomes() {
        let r = sample_report();
        assert_eq!(r.summary.cells, 2);
        assert_eq!(r.summary.failures, 1);
        assert_eq!(r.summary.decided, 1);
    }

    #[test]
    #[should_panic(expected = "one label per cell")]
    fn arity_is_checked() {
        let _ = SweepReport::new("x", 0, vec![], vec![1], vec![CellOutcome::of_rate(0.5, 1)]);
    }
}
