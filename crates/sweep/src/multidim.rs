//! Multidimensional ensemble axes: the `R^d` counterpart of
//! [`crate::EnsembleGrid`].
//!
//! The multidimensional decision-time experiments (arXiv:1805.04923)
//! sweep over the **dimension** `d` and over multidimensional
//! initial-value distributions — axes the scalar [`crate::InitDist`]
//! cannot express. [`MultidimGrid`] expands `dims × agents × topologies
//! × inits × replicates` into a flat, deterministically ordered
//! [`MultidimCell`] list for [`crate::Sweep`]; the graph axis reuses
//! [`Topology`] unchanged (communication graphs are
//! dimension-independent).
//!
//! Because the value dimension is a *const generic* on the algorithm
//! side, a cell stores `dim` as data and the runner dispatches to the
//! monomorphised `Point<D>` code (the bench crate's
//! `multidim_decision_times` experiment matches on `dim ∈ {1, 2, 3, 4,
//! 8}`).
//!
//! All samplers are built exclusively from comparisons, `+`, `−`, `×`
//! and `√` — no transcendental libm calls — so the sampled values (and
//! therefore the golden sweep JSON the CI gate diffs) are bit-identical
//! across platforms.

use consensus_algorithms::Point;
use consensus_dynamics::pattern::RandomPattern;
use rand::{Rng, RngCore};

use crate::grid::{Topology, TopologySampler};

/// How a multidimensional cell draws its initial values in `R^d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultidimInitDist {
    /// I.i.d. uniform draws from the unit cube `[0, 1]^d`.
    UnitCube,
    /// Uniform draws from the standard unit simplex
    /// `{x ∈ R^d : x ≥ 0, Σ x_c ≤ 1}` via the exact order-statistics
    /// construction (sorted-uniform spacings) — the distribution on
    /// which the coordinate-wise box centre leaves the convex hull for
    /// `d ≥ 3`.
    UnitSimplex,
    /// Correlated near-Gaussian draws: one shared and one private
    /// Irwin–Hall(12) variate per coordinate, mixed with correlation
    /// `ρ = 0.8` and scaled to concentrate in `[0, 1]`. (Irwin–Hall
    /// instead of Box–Muller keeps the sampler free of `ln`/`cos`,
    /// whose bit patterns vary across libm implementations.)
    CorrelatedGaussian,
}

/// A standard-normal-ish variate: Irwin–Hall(12), i.e. the sum of 12
/// uniforms minus 6 (mean 0, variance 1, support `[−6, 6]`).
fn irwin_hall(rng: &mut dyn RngCore) -> f64 {
    let mut s = 0.0;
    for _ in 0..12 {
        s += rng.random_range(0.0..1.0);
    }
    s - 6.0
}

impl MultidimInitDist {
    /// Samples an `n`-agent initial configuration in `R^D`.
    #[must_use]
    pub fn sample<const D: usize>(self, n: usize, rng: &mut dyn RngCore) -> Vec<Point<D>> {
        match self {
            MultidimInitDist::UnitCube => (0..n)
                .map(|_| {
                    let mut p = Point::ZERO;
                    for c in 0..D {
                        p[c] = rng.random_range(0.0..=1.0);
                    }
                    p
                })
                .collect(),
            MultidimInitDist::UnitSimplex => (0..n)
                .map(|_| {
                    // D sorted uniforms in [0, 1]; their spacings are a
                    // uniform point on {x ≥ 0, Σx ≤ 1} (Dirichlet(1,…,1)
                    // over D+1 coordinates, last one dropped).
                    let mut cuts = [0.0f64; D];
                    for c in cuts.iter_mut() {
                        *c = rng.random_range(0.0..1.0);
                    }
                    cuts.sort_by(f64::total_cmp);
                    let mut p = Point::ZERO;
                    let mut prev = 0.0;
                    for c in 0..D {
                        p[c] = cuts[c] - prev;
                        prev = cuts[c];
                    }
                    p
                })
                .collect(),
            MultidimInitDist::CorrelatedGaussian => {
                const RHO: f64 = 0.8;
                let shared: Vec<f64> = (0..D).map(|_| irwin_hall(rng)).collect();
                let mix = (1.0 - RHO * RHO).sqrt();
                (0..n)
                    .map(|_| {
                        let mut p = Point::ZERO;
                        for c in 0..D {
                            let z = RHO * shared[c] + mix * irwin_hall(rng);
                            p[c] = 0.5 + 0.15 * z;
                        }
                        p
                    })
                    .collect()
            }
        }
    }

    /// A short stable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MultidimInitDist::UnitCube => "cube",
            MultidimInitDist::UnitSimplex => "simplex",
            MultidimInitDist::CorrelatedGaussian => "gauss",
        }
    }
}

/// One point of a [`MultidimGrid`]: everything a runner needs to
/// rebuild its `R^d` scenario inputs from the cell seed. The runner
/// dispatches on [`MultidimCell::dim`] to the monomorphised `Point<D>`
/// code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultidimCell {
    /// The value dimension `d`.
    pub dim: usize,
    /// Number of agents.
    pub n: usize,
    /// Graph source (dimension-independent; shared with the scalar
    /// grid).
    pub topology: Topology,
    /// Initial-value distribution in `R^d`.
    pub init: MultidimInitDist,
    /// Replicate number within this configuration (0-based; for
    /// labeling — the cell seed already distinguishes replicates).
    pub replicate: u64,
}

impl MultidimCell {
    /// Draws this cell's initial configuration from `rng`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `D != self.dim` — the runner's
    /// dispatch must match the cell's dimension.
    #[must_use]
    pub fn inits<const D: usize>(&self, rng: &mut dyn RngCore) -> Vec<Point<D>> {
        debug_assert_eq!(D, self.dim, "runner dispatched the wrong dimension");
        self.init.sample::<D>(self.n, rng)
    }

    /// This cell's graph pattern, seeded deterministically.
    #[must_use]
    pub fn pattern(&self, seed: u64) -> RandomPattern<TopologySampler> {
        RandomPattern::new(self.topology.sampler(self.n), seed)
    }

    /// A stable human/JSON label, e.g. `d=3 n=8 rooted(d=0.25) simplex r=1`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "d={} n={} {} {} r={}",
            self.dim,
            self.n,
            self.topology.label(),
            self.init.label(),
            self.replicate
        )
    }
}

/// The multidimensional named-axes grid builder. Expansion order is
/// fixed (dims ▸ agents ▸ topologies ▸ inits ▸ replicates), so cell
/// indices — and therefore per-cell seeds — are stable for a given
/// grid, mirroring [`crate::EnsembleGrid`].
#[derive(Debug, Clone)]
pub struct MultidimGrid {
    dims: Vec<usize>,
    agents: Vec<usize>,
    topologies: Vec<Topology>,
    inits: Vec<MultidimInitDist>,
    replicates: u64,
}

impl Default for MultidimGrid {
    fn default() -> Self {
        MultidimGrid {
            dims: vec![2],
            agents: vec![8],
            topologies: vec![Topology::Rooted { density: 0.25 }],
            inits: vec![MultidimInitDist::UnitCube],
            replicates: 1,
        }
    }
}

impl MultidimGrid {
    /// A grid with single-valued default axes (d=2, n=8, rooted(0.25)
    /// graphs, unit-cube inits, one replicate).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dimension axis.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    #[must_use]
    pub fn dims(mut self, dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "dimension axis must be non-empty");
        self.dims = dims.to_vec();
        self
    }

    /// Sets the agent-count axis.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty.
    #[must_use]
    pub fn agents(mut self, agents: &[usize]) -> Self {
        assert!(!agents.is_empty(), "agent axis must be non-empty");
        self.agents = agents.to_vec();
        self
    }

    /// Sets the topology axis.
    ///
    /// # Panics
    ///
    /// Panics if `topologies` is empty.
    #[must_use]
    pub fn topologies(mut self, topologies: &[Topology]) -> Self {
        assert!(!topologies.is_empty(), "topology axis must be non-empty");
        self.topologies = topologies.to_vec();
        self
    }

    /// Sets the initial-value-distribution axis.
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty.
    #[must_use]
    pub fn inits(mut self, inits: &[MultidimInitDist]) -> Self {
        assert!(!inits.is_empty(), "init axis must be non-empty");
        self.inits = inits.to_vec();
        self
    }

    /// Sets the number of seed replicates per configuration.
    ///
    /// # Panics
    ///
    /// Panics if `replicates == 0`.
    #[must_use]
    pub fn replicates(mut self, replicates: u64) -> Self {
        assert!(replicates >= 1, "need at least one replicate");
        self.replicates = replicates;
        self
    }

    /// The number of cells the grid expands to.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dims.len()
            * self.agents.len()
            * self.topologies.len()
            * self.inits.len()
            * self.replicates as usize
    }

    /// Whether the grid is empty (never true for a built grid; axes are
    /// validated non-empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into the flat, deterministically
    /// ordered cell list.
    #[must_use]
    pub fn cells(&self) -> Vec<MultidimCell> {
        let mut out = Vec::with_capacity(self.len());
        for &dim in &self.dims {
            for &n in &self.agents {
                for &topology in &self.topologies {
                    for &init in &self.inits {
                        for replicate in 0..self.replicates {
                            out.push(MultidimCell {
                                dim,
                                n,
                                topology,
                                init,
                                replicate,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_expansion_is_the_full_product_in_fixed_order() {
        let grid = MultidimGrid::new()
            .dims(&[1, 3])
            .agents(&[4])
            .topologies(&[Topology::Complete])
            .inits(&[MultidimInitDist::UnitCube, MultidimInitDist::UnitSimplex])
            .replicates(2);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.len());
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].dim, 1);
        assert_eq!(cells[0].replicate, 0);
        assert_eq!(cells[1].replicate, 1);
        assert_eq!(cells.last().expect("non-empty").dim, 3);
        assert_eq!(cells, grid.cells(), "expansion is deterministic");
        assert!(!grid.is_empty());
    }

    #[test]
    fn cube_samples_lie_in_the_cube() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = MultidimInitDist::UnitCube.sample::<3>(16, &mut rng);
        assert_eq!(v.len(), 16);
        for p in &v {
            assert!(p.0.iter().all(|&x| (0.0..=1.0).contains(&x)), "{p:?}");
        }
    }

    #[test]
    fn simplex_samples_lie_in_the_simplex() {
        let mut rng = StdRng::seed_from_u64(2);
        for p in MultidimInitDist::UnitSimplex.sample::<4>(64, &mut rng) {
            assert!(p.0.iter().all(|&x| x >= 0.0), "{p:?}");
            assert!(p.0.iter().sum::<f64>() <= 1.0 + 1e-12, "{p:?}");
        }
    }

    #[test]
    fn gaussian_samples_are_correlated_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = MultidimInitDist::CorrelatedGaussian.sample::<2>(256, &mut rng);
        // Irwin–Hall(12) is supported on [−6, 6]; mixed and scaled the
        // coordinates stay within 0.5 ± 0.9·1.8.
        for p in &v {
            assert!(p.0.iter().all(|&x| (-1.5..=2.5).contains(&x)), "{p:?}");
        }
        // The shared component induces positive cross-agent correlation
        // per coordinate: the empirical mean sits near the shared draw,
        // away from 0.5 more often than independent sampling would.
        let mean0: f64 = v.iter().map(|p| p[0]).sum::<f64>() / v.len() as f64;
        assert!((0.0..=1.0).contains(&mean0));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        for dist in [
            MultidimInitDist::UnitCube,
            MultidimInitDist::UnitSimplex,
            MultidimInitDist::CorrelatedGaussian,
        ] {
            let a = dist.sample::<3>(8, &mut StdRng::seed_from_u64(7));
            let b = dist.sample::<3>(8, &mut StdRng::seed_from_u64(7));
            assert_eq!(a, b, "{dist:?}");
        }
    }

    #[test]
    fn labels_are_stable() {
        let cell = MultidimCell {
            dim: 3,
            n: 8,
            topology: Topology::Rooted { density: 0.25 },
            init: MultidimInitDist::UnitSimplex,
            replicate: 1,
        };
        assert_eq!(cell.label(), "d=3 n=8 rooted(d=0.25) simplex r=1");
    }

    #[test]
    fn cell_pattern_is_seed_deterministic() {
        use consensus_dynamics::pattern::PatternSource;
        let cell = MultidimCell {
            dim: 2,
            n: 6,
            topology: Topology::Rooted { density: 0.3 },
            init: MultidimInitDist::UnitCube,
            replicate: 0,
        };
        let mut a = cell.pattern(9);
        let mut b = cell.pattern(9);
        for round in 1..=10 {
            assert_eq!(a.next_graph(round), b.next_graph(round));
        }
    }
}
