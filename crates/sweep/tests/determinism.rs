//! Determinism contracts of the sweep harness:
//!
//! 1. running the same grid with 1 thread and N threads yields
//!    **bit-identical** aggregated statistics (outcomes, summary, JSON);
//! 2. replaying a single cell by its index/seed reproduces exactly the
//!    trace the full parallel run recorded for it.

use consensus_algorithms::MeanValue;
use consensus_dynamics::Scenario;
use consensus_sweep::{
    fingerprint, CellCtx, CellOutcome, EnsembleCell, EnsembleGrid, InitDist, Sweep, SweepReport,
    SweepSummary, Topology,
};
use proptest::prelude::*;

const TOPOLOGIES: [Topology; 4] = [
    Topology::Complete,
    Topology::Rooted { density: 0.2 },
    Topology::Nonsplit { density: 0.3 },
    Topology::AsyncCrash { f: 1 },
];

const INITS: [InitDist; 3] = [InitDist::Spread, InitDist::Uniform, InitDist::Bipolar];

/// The reference cell runner used by every test here: mean-value
/// averaging under the cell's random pattern, 60 rounds, full outcome.
fn run_cell(cell: &EnsembleCell, ctx: CellCtx) -> CellOutcome {
    let inits = cell.inits(&mut ctx.rng());
    let mut sc = Scenario::new(MeanValue, &inits)
        .pattern(cell.pattern(ctx.subseed(1)))
        .decide(1e-6);
    let decision = sc.decision_round(60);
    let exec = sc.execution();
    CellOutcome {
        rate: exec.value_diameter(),
        decision_round: decision,
        rounds: exec.round(),
        converged: decision.is_some(),
        fingerprint: fingerprint(exec.outputs_slice()),
    }
}

/// Like [`run_cell`] but recording the full per-round diameter series —
/// the "trace" replay equality is asserted on.
fn run_cell_trace(cell: &EnsembleCell, ctx: CellCtx) -> Vec<f64> {
    let inits = cell.inits(&mut ctx.rng());
    let trace = Scenario::new(MeanValue, &inits)
        .pattern(cell.pattern(ctx.subseed(1)))
        .run(60);
    trace.diameters()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 1 worker vs N workers: the aggregated statistics (and every
    /// per-cell outcome they summarize) are bit-identical.
    #[test]
    fn one_thread_and_n_threads_agree_bit_for_bit(
        base_seed in 0u64..1_000_000,
        threads in 2usize..9,
        replicates in 1u64..4,
        topo_a in 0usize..4,
        topo_b in 0usize..4,
        init_idx in 0usize..3,
    ) {
        let grid = EnsembleGrid::new()
            .agents(&[3, 5])
            .topologies(&[TOPOLOGIES[topo_a], TOPOLOGIES[topo_b]])
            .inits(&[INITS[init_idx]])
            .replicates(replicates);

        let seq = Sweep::new(grid.cells()).seed(base_seed).threads(1);
        let par = Sweep::new(grid.cells()).seed(base_seed).threads(threads);
        let seq_out = seq.run(run_cell);
        let par_out = par.run(run_cell);

        prop_assert_eq!(&seq_out, &par_out, "per-cell outcomes must be bit-identical");
        prop_assert_eq!(
            SweepSummary::aggregate(&seq_out),
            SweepSummary::aggregate(&par_out)
        );

        let labels: Vec<String> = seq.cells().iter().map(EnsembleCell::label).collect();
        let seeds: Vec<u64> = (0..seq.len()).map(|i| seq.seed_of(i)).collect();
        let a = SweepReport::new("prop", base_seed, labels.clone(), seeds.clone(), seq_out);
        let b = SweepReport::new("prop", base_seed, labels, seeds, par_out);
        prop_assert_eq!(a.to_json(), b.to_json(), "serialized reports must be byte-identical");
    }

    /// Replaying one cell solo reproduces the exact trace the full
    /// parallel run recorded for that cell.
    #[test]
    fn single_cell_replay_reproduces_its_recorded_trace(
        base_seed in 0u64..1_000_000,
        pick in 0usize..1000,
        topo_idx in 0usize..4,
    ) {
        let grid = EnsembleGrid::new()
            .agents(&[4, 6])
            .topologies(&[TOPOLOGIES[topo_idx]])
            .inits(&[InitDist::Uniform])
            .replicates(3);
        let sweep = Sweep::new(grid.cells()).seed(base_seed).threads(4);

        let full: Vec<Vec<f64>> = sweep.run(run_cell_trace);
        let index = pick % sweep.len();
        let solo = sweep.run_cell(index, run_cell_trace);
        prop_assert_eq!(&solo, &full[index], "cell {} must replay bit-identically", index);

        // The compact outcome agrees too (same seed ⇒ same fingerprint).
        let outcomes = sweep.run(run_cell);
        let solo_outcome = sweep.run_cell(index, run_cell);
        prop_assert_eq!(solo_outcome, outcomes[index]);
    }
}

/// The scaling acceptance check (≥ 3× at 4+ threads on a 64-cell grid).
/// Ignored by default: it needs a ≥ 4-core machine to pass and wall
/// clock is inherently environment-dependent. Run explicitly with
/// `cargo test -p consensus-sweep --release -- --ignored speedup`.
#[test]
#[ignore = "requires >= 4 physical cores; run explicitly on capable hardware"]
fn speedup_at_least_3x_on_4_threads_for_64_cells() {
    let grid = EnsembleGrid::new()
        .agents(&[16, 24])
        .topologies(&[
            Topology::Rooted { density: 0.15 },
            Topology::Nonsplit { density: 0.2 },
        ])
        .inits(&[InitDist::Uniform, InitDist::Bipolar])
        .replicates(8);
    let cells = grid.cells();
    assert_eq!(cells.len(), 64);

    let time = |threads: usize| {
        let sweep = Sweep::new(cells.clone()).seed(7).threads(threads);
        let mut best = std::time::Duration::MAX;
        for _ in 0..3 {
            let start = std::time::Instant::now();
            std::hint::black_box(sweep.run(run_cell));
            best = best.min(start.elapsed());
        }
        best
    };
    let seq = time(1);
    let par = time(4);
    let speedup = seq.as_secs_f64() / par.as_secs_f64().max(1e-12);
    assert!(
        speedup >= 3.0,
        "expected >= 3x speedup at 4 threads, got {speedup:.2}x ({seq:?} vs {par:?})"
    );
}
