//! The discrete-event simulation engine.
//!
//! Agents perform *receive–compute–broadcast* steps (paper §8). The
//! engine delivers messages in timestamp order; delays are chosen by a
//! [`DelayStrategy`] and must lie in `(0, 1]` — time is normalised so
//! that the longest end-to-end delay is 1, matching the paper's standard
//! convention for measuring time in asynchronous systems.
//!
//! Crashes are *unclean* (§8): a crash is specified as “agent `a` dies
//! during its `k`-th broadcast, which reaches only the subset `R`”.
//! Counting broadcasts (instead of naming a wall-clock instant) keeps
//! the schedule deterministic and robust to floating-point time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An asynchronous, message-driven algorithm with values in `R`
/// (the paper's §8 statements are one-dimensional; see DESIGN.md).
///
/// Determinism: `on_receive` must be a function of `(state, from, msg)`
/// only.
pub trait AsyncAlgorithm {
    /// Per-agent state.
    type State: Clone + std::fmt::Debug;
    /// Message payload.
    type Msg: Clone + std::fmt::Debug;

    /// Short name for reports.
    fn name(&self) -> String;

    /// Initial state and the messages broadcast at time 0.
    fn init(&self, agent: usize, y0: f64, n: usize, f: usize) -> (Self::State, Vec<Self::Msg>);

    /// Handles one delivered message; returns the messages to broadcast
    /// in response (each broadcast goes to **all** agents, self included
    /// with delay 0 handled by the engine).
    fn on_receive(
        &self,
        agent: usize,
        state: &mut Self::State,
        from: usize,
        msg: &Self::Msg,
    ) -> Vec<Self::Msg>;

    /// The agent's current output `y_i`.
    fn output(&self, state: &Self::State) -> f64;

    /// A scheduling hint exposed to [`DelayStrategy`] (e.g. the round
    /// number of a round-based message). Defaults to 0.
    fn hint(&self, _msg: &Self::Msg) -> u64 {
        0
    }
}

/// Chooses per-message delays in `(0, 1]`.
pub trait DelayStrategy {
    /// Delay for a message `from → to` carrying scheduling hint `hint`,
    /// sent at `send_time`. Must return a value in `(0, 1]`.
    fn delay(&mut self, from: usize, to: usize, hint: u64, send_time: f64) -> f64;
}

/// All messages take the same delay `d ∈ (0, 1]`.
#[derive(Debug, Clone)]
pub struct ConstantDelay {
    d: f64,
}

impl ConstantDelay {
    /// Creates the strategy.
    ///
    /// # Panics
    ///
    /// Panics if `d ∉ (0, 1]`.
    #[must_use]
    pub fn new(d: f64) -> Self {
        assert!(d > 0.0 && d <= 1.0, "delays must be in (0, 1]");
        ConstantDelay { d }
    }
}

impl DelayStrategy for ConstantDelay {
    fn delay(&mut self, _from: usize, _to: usize, _hint: u64, _send_time: f64) -> f64 {
        self.d
    }
}

/// Uniformly random delays in `[lo, 1]`, reproducible by seed.
#[derive(Debug, Clone)]
pub struct RandomDelay {
    lo: f64,
    rng: rand::rngs::StdRng,
}

impl RandomDelay {
    /// Creates the strategy with minimum delay `lo ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo ∉ (0, 1]`.
    #[must_use]
    pub fn new(lo: f64, seed: u64) -> Self {
        use rand::SeedableRng;
        assert!(lo > 0.0 && lo <= 1.0);
        RandomDelay {
            lo,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl DelayStrategy for RandomDelay {
    fn delay(&mut self, _from: usize, _to: usize, _hint: u64, _send_time: f64) -> f64 {
        use rand::Rng;
        self.rng.random_range(self.lo..=1.0)
    }
}

/// Delays messages from the Lemma 24 block of the current round: block
/// members' round-`r` messages arrive at the full delay 1, everyone
/// else's at `fast`. For a round-based algorithm waiting for `n − f`
/// messages this realises the communication graph that omits exactly
/// block `r mod ⌈n/f⌉` — the paper's Lemma 24 pattern.
#[derive(Debug, Clone)]
pub struct RotatingBlockDelay {
    n: usize,
    f: usize,
    fast: f64,
}

impl RotatingBlockDelay {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0`, `f ≥ n` or `fast ∉ (0, 1)`.
    #[must_use]
    pub fn new(n: usize, f: usize, fast: f64) -> Self {
        assert!(f >= 1 && f < n, "need 0 < f < n");
        assert!(fast > 0.0 && fast < 1.0, "fast delay must be < 1");
        RotatingBlockDelay { n, f, fast }
    }
}

impl DelayStrategy for RotatingBlockDelay {
    fn delay(&mut self, from: usize, _to: usize, hint: u64, _send_time: f64) -> f64 {
        let q = self.n.div_ceil(self.f);
        let r = (hint as usize) % q; // block index for this round
        let block = consensus_digraph::families::lemma24_block(self.n, self.f, r + 1);
        if block & (1u64 << from) != 0 {
            1.0
        } else {
            self.fast
        }
    }
}

/// One crash: the agent dies **during** its `fatal_broadcast`-th
/// broadcast (0-based count over its lifetime, including the initial
/// time-0 broadcasts); that broadcast reaches only `final_recipients`
/// (a bitmask), and the agent never acts again.
#[derive(Debug, Clone, Copy)]
pub struct Crash {
    /// The crashing agent.
    pub agent: usize,
    /// Index of the fatal broadcast in the agent's broadcast sequence.
    pub fatal_broadcast: usize,
    /// Bitmask of agents that still receive the fatal broadcast.
    pub final_recipients: u64,
}

/// A set of crashes (at most one per agent).
#[derive(Debug, Clone, Default)]
pub struct CrashSchedule {
    crashes: Vec<Crash>,
}

impl CrashSchedule {
    /// No crashes.
    #[must_use]
    pub fn none() -> Self {
        CrashSchedule::default()
    }

    /// Builds a schedule from explicit crashes.
    ///
    /// # Panics
    ///
    /// Panics if an agent appears twice.
    #[must_use]
    pub fn new(crashes: Vec<Crash>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for c in &crashes {
            assert!(seen.insert(c.agent), "agent {} crashes twice", c.agent);
        }
        CrashSchedule { crashes }
    }

    /// The number of crashes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }

    fn crash_of(&self, agent: usize) -> Option<&Crash> {
        self.crashes.iter().find(|c| c.agent == agent)
    }
}

/// A pending delivery.
#[derive(Debug, Clone)]
struct Delivery<M> {
    time: f64,
    seq: u64,
    from: usize,
    to: usize,
    msg: M,
}

impl<M> PartialEq for Delivery<M> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl<M> Eq for Delivery<M> {}
impl<M> Delivery<M> {
    fn cmp_key(&self) -> (u64, u64) {
        // total_cmp-compatible ordering via bit representation of
        // non-negative times.
        (self.time.to_bits(), self.seq)
    }
}
impl<M> Ord for Delivery<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse for earliest-first.
        other.cmp_key().cmp(&self.cmp_key())
    }
}
impl<M> PartialOrd for Delivery<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A running asynchronous system.
pub struct Simulation<A: AsyncAlgorithm> {
    alg: A,
    n: usize,
    states: Vec<A::State>,
    /// Number of broadcasts each agent has performed.
    broadcasts: Vec<usize>,
    /// Whether the agent has crashed.
    dead: Vec<bool>,
    queue: BinaryHeap<Delivery<A::Msg>>,
    delays: Box<dyn DelayStrategy>,
    crashes: CrashSchedule,
    time: f64,
    seq: u64,
    delivered: u64,
}

impl<A: AsyncAlgorithm> Simulation<A> {
    /// Creates the system and performs the time-0 initial broadcasts.
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty or `f ≥ n`.
    #[must_use]
    pub fn new(
        alg: A,
        inits: &[f64],
        f: usize,
        delays: Box<dyn DelayStrategy>,
        crashes: CrashSchedule,
    ) -> Self {
        let n = inits.len();
        assert!(n >= 1, "need at least one agent");
        assert!(f < n, "need f < n");
        assert!(crashes.len() <= f, "schedule exceeds the crash budget f");
        let mut sim = Simulation {
            alg,
            n,
            states: Vec::with_capacity(n),
            broadcasts: vec![0; n],
            dead: vec![false; n],
            queue: BinaryHeap::new(),
            delays,
            crashes,
            time: 0.0,
            seq: 0,
            delivered: 0,
        };
        let mut initial_msgs = Vec::with_capacity(n);
        for (i, &y0) in inits.iter().enumerate() {
            let (st, msgs) = sim.alg.init(i, y0, n, f);
            sim.states.push(st);
            initial_msgs.push(msgs);
        }
        for (i, msgs) in initial_msgs.into_iter().enumerate() {
            for m in msgs {
                sim.broadcast(i, 0.0, m);
            }
        }
        sim
    }

    /// The current simulation time.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Total messages delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The outputs of all agents (crashed included — frozen at crash).
    #[must_use]
    pub fn outputs(&self) -> Vec<f64> {
        self.states.iter().map(|s| self.alg.output(s)).collect()
    }

    /// The `(agent, output)` pairs of **correct** (non-crashed) agents;
    /// the paper's §8 convergence/agreement/validity conditions quantify
    /// over these only.
    #[must_use]
    pub fn correct_outputs(&self) -> Vec<(usize, f64)> {
        (0..self.n)
            .filter(|&i| !self.dead[i])
            .map(|i| (i, self.alg.output(&self.states[i])))
            .collect()
    }

    /// The spread of the correct agents' outputs.
    #[must_use]
    pub fn correct_diameter(&self) -> f64 {
        let outs = self.correct_outputs();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, y) in &outs {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        if outs.is_empty() {
            0.0
        } else {
            hi - lo
        }
    }

    fn broadcast(&mut self, from: usize, now: f64, msg: A::Msg) {
        if self.dead[from] {
            return;
        }
        let idx = self.broadcasts[from];
        self.broadcasts[from] += 1;
        let fatal = self.crashes.crash_of(from).copied();
        let (recipients, dies) = match fatal {
            Some(c) if idx == c.fatal_broadcast => (c.final_recipients, true),
            Some(c) if idx > c.fatal_broadcast => (0, true),
            _ => (u64::MAX, false),
        };
        let hint = self.alg.hint(&msg);
        for to in 0..self.n {
            if recipients & (1u64 << to) == 0 {
                continue;
            }
            let d = if to == from {
                0.0
            } else {
                let d = self.delays.delay(from, to, hint, now);
                assert!(d > 0.0 && d <= 1.0, "delays must be in (0, 1]");
                d
            };
            self.seq += 1;
            self.queue.push(Delivery {
                time: now + d,
                seq: self.seq,
                from,
                to,
                msg: msg.clone(),
            });
        }
        if dies {
            self.dead[from] = true;
        }
    }

    /// Processes all deliveries with `time ≤ horizon` (or until
    /// quiescence). Returns the number of messages delivered.
    pub fn run_until(&mut self, horizon: f64) -> u64 {
        let mut count = 0;
        while let Some(top) = self.queue.peek() {
            if top.time > horizon {
                break;
            }
            let d = self.queue.pop().expect("peeked");
            self.time = d.time;
            if self.dead[d.to] {
                continue;
            }
            self.delivered += 1;
            count += 1;
            let replies = self
                .alg
                .on_receive(d.to, &mut self.states[d.to], d.from, &d.msg);
            for m in replies {
                self.broadcast(d.to, d.time, m);
            }
        }
        count
    }

    /// Runs to quiescence (empty queue), with a safety cap on
    /// deliveries.
    ///
    /// # Panics
    ///
    /// Panics if the cap is exceeded (a non-terminating protocol).
    pub fn run_to_quiescence(&mut self, max_deliveries: u64) {
        let mut count = 0u64;
        while let Some(d) = self.queue.pop() {
            self.time = d.time;
            if self.dead[d.to] {
                continue;
            }
            self.delivered += 1;
            count += 1;
            assert!(
                count <= max_deliveries,
                "protocol did not quiesce within {max_deliveries} deliveries"
            );
            let replies = self
                .alg
                .on_receive(d.to, &mut self.states[d.to], d.from, &d.msg);
            for m in replies {
                self.broadcast(d.to, d.time, m);
            }
        }
    }

    /// Whether agent `i` has crashed.
    #[must_use]
    pub fn is_dead(&self, i: usize) -> bool {
        self.dead[i]
    }

    /// Read access to an agent's algorithm state (for histories/reports).
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    #[must_use]
    pub fn state(&self, i: usize) -> &A::State {
        &self.states[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial echo algorithm used to exercise the engine: every agent
    /// broadcasts its value once; on receive it records the max seen.
    #[derive(Debug, Clone)]
    struct MaxOnce;

    impl AsyncAlgorithm for MaxOnce {
        type State = f64;
        type Msg = f64;

        fn name(&self) -> String {
            "max-once".into()
        }

        fn init(&self, _agent: usize, y0: f64, _n: usize, _f: usize) -> (f64, Vec<f64>) {
            (y0, vec![y0])
        }

        fn on_receive(&self, _a: usize, state: &mut f64, _from: usize, msg: &f64) -> Vec<f64> {
            if *msg > *state {
                *state = *msg;
            }
            Vec::new()
        }

        fn output(&self, state: &f64) -> f64 {
            *state
        }
    }

    #[test]
    fn all_messages_delivered_without_crashes() {
        let mut sim = Simulation::new(
            MaxOnce,
            &[1.0, 2.0, 3.0],
            1,
            Box::new(ConstantDelay::new(1.0)),
            CrashSchedule::none(),
        );
        sim.run_to_quiescence(1000);
        assert_eq!(sim.outputs(), vec![3.0, 3.0, 3.0]);
        // 3 broadcasts × 3 recipients.
        assert_eq!(sim.delivered(), 9);
    }

    #[test]
    fn horizon_respected() {
        let mut sim = Simulation::new(
            MaxOnce,
            &[1.0, 5.0],
            1,
            Box::new(ConstantDelay::new(1.0)),
            CrashSchedule::none(),
        );
        // Self-deliveries at time 0 only.
        sim.run_until(0.5);
        assert_eq!(sim.outputs(), vec![1.0, 5.0]);
        sim.run_until(1.0);
        assert_eq!(sim.outputs(), vec![5.0, 5.0]);
    }

    #[test]
    fn unclean_crash_partitions_final_broadcast() {
        // Agent 2 (value 9) crashes during its very first broadcast,
        // reaching only agent 0.
        let crashes = CrashSchedule::new(vec![Crash {
            agent: 2,
            fatal_broadcast: 0,
            final_recipients: 0b001,
        }]);
        let mut sim = Simulation::new(
            MaxOnce,
            &[1.0, 2.0, 9.0],
            1,
            Box::new(ConstantDelay::new(1.0)),
            crashes,
        );
        sim.run_to_quiescence(1000);
        assert!(sim.is_dead(2));
        let outs = sim.outputs();
        assert_eq!(outs[0], 9.0, "agent 0 got the final broadcast");
        assert_eq!(outs[1], 2.0, "agent 1 did not");
    }

    #[test]
    fn crash_budget_enforced() {
        let crashes = CrashSchedule::new(vec![Crash {
            agent: 0,
            fatal_broadcast: 0,
            final_recipients: 0,
        }]);
        let r = std::panic::catch_unwind(|| {
            Simulation::new(
                MaxOnce,
                &[1.0, 2.0],
                0,
                Box::new(ConstantDelay::new(1.0)),
                crashes,
            )
        });
        assert!(r.is_err(), "f = 0 admits no crash schedule");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut sim = Simulation::new(
                MaxOnce,
                &[0.0, 1.0, 2.0, 3.0],
                1,
                Box::new(RandomDelay::new(0.2, 7)),
                CrashSchedule::none(),
            );
            sim.run_to_quiescence(10_000);
            sim.outputs()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rotating_block_delay_shape() {
        let mut d = RotatingBlockDelay::new(4, 1, 0.25);
        // Round hint 0 → block 1 = {agent 0} is slow.
        assert_eq!(d.delay(0, 1, 0, 0.0), 1.0);
        assert_eq!(d.delay(1, 2, 0, 0.0), 0.25);
        // Round hint 1 → block 2 = {agent 1} is slow.
        assert_eq!(d.delay(1, 2, 1, 0.0), 1.0);
        assert_eq!(d.delay(0, 1, 1, 0.0), 0.25);
    }
}
