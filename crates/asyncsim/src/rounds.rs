//! Round-based algorithms on the asynchronous engine (paper §8.1).
//!
//! An algorithm *operates in rounds* if each agent waits for `n − f`
//! messages of the current round, updates its state from them, and
//! broadcasts the next round's message. Theorem 6: every such algorithm
//! has contraction rate ≥ `1/(⌈n/f⌉+1)` — the engine realises the bound's
//! communication graphs through the [`crate::engine::RotatingBlockDelay`]
//! scheduler, and per-*time* contraction follows because a round always
//! completes within one normalised delay unit.

use crate::engine::AsyncAlgorithm;
use consensus_algorithms::float::det_min_max;
use std::collections::BTreeMap;

/// The per-round update rule applied to the `n − f` received values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundRule {
    /// Midpoint of the received extremes (async analogue of Algorithm 2).
    Midpoint,
    /// Arithmetic mean of the received values — the Fekete-style \[18\]
    /// averaging whose worst case `~f/(n−f)` matches the upper end of
    /// Table 1's round-based interval.
    Mean,
}

impl RoundRule {
    /// Applies the rule to a non-empty value slice.
    #[must_use]
    pub fn apply(self, values: &[f64]) -> f64 {
        debug_assert!(!values.is_empty());
        match self {
            RoundRule::Midpoint => {
                let (lo, hi) = det_min_max(values.iter().copied());
                (lo + hi) / 2.0
            }
            RoundRule::Mean => values.iter().sum::<f64>() / values.len() as f64,
        }
    }
}

/// A round-based asynchronous algorithm: waits for `n − f` round-`r`
/// messages (its own arrives instantly), applies a [`RoundRule`], and
/// broadcasts round `r + 1`.
#[derive(Debug, Clone, Copy)]
pub struct RoundBased {
    rule: RoundRule,
    /// Stop issuing new rounds after this many (keeps simulations finite).
    pub max_rounds: u64,
}

/// State of [`RoundBased`].
#[derive(Debug, Clone)]
pub struct RoundBasedState {
    n: usize,
    f: usize,
    /// Current round (the round whose messages we are collecting).
    round: u64,
    y: f64,
    /// Buffered values per round: round → sender → value.
    inbox: BTreeMap<u64, BTreeMap<usize, f64>>,
    /// Time-stamped round completions (round, value) for rate-vs-round
    /// accounting by the harness.
    pub history: Vec<(u64, f64)>,
}

impl RoundBased {
    /// Creates a round-based algorithm with the given rule.
    #[must_use]
    pub fn new(rule: RoundRule, max_rounds: u64) -> Self {
        RoundBased { rule, max_rounds }
    }

    /// The update rule.
    #[must_use]
    pub fn rule(&self) -> RoundRule {
        self.rule
    }
}

/// The message of a round-based algorithm: `(round, value)`.
pub type RoundMsg = (u64, f64);

impl AsyncAlgorithm for RoundBased {
    type State = RoundBasedState;
    type Msg = RoundMsg;

    fn name(&self) -> String {
        format!("round-based({:?})", self.rule)
    }

    fn init(&self, _agent: usize, y0: f64, n: usize, f: usize) -> (RoundBasedState, Vec<RoundMsg>) {
        let st = RoundBasedState {
            n,
            f,
            round: 1,
            y: y0,
            inbox: BTreeMap::new(),
            history: vec![(0, y0)],
        };
        (st, vec![(1, y0)])
    }

    fn on_receive(
        &self,
        _agent: usize,
        state: &mut RoundBasedState,
        from: usize,
        msg: &RoundMsg,
    ) -> Vec<RoundMsg> {
        let (round, value) = *msg;
        if round < state.round {
            return Vec::new(); // stale round; communication-closedness
        }
        state.inbox.entry(round).or_default().insert(from, value);
        let mut out = Vec::new();
        // Complete as many rounds as possible (messages may arrive for
        // future rounds before the current one completes).
        while state.round <= self.max_rounds {
            let have = state.inbox.get(&state.round).map_or(0, BTreeMap::len);
            if have < state.n - state.f {
                break;
            }
            let values: Vec<f64> = state
                .inbox
                .remove(&state.round)
                .expect("checked")
                .into_values()
                .collect();
            state.y = self.rule.apply(&values);
            state.history.push((state.round, state.y));
            state.round += 1;
            if state.round <= self.max_rounds {
                out.push((state.round, state.y));
            }
        }
        out
    }

    fn output(&self, state: &RoundBasedState) -> f64 {
        state.y
    }

    /// The scheduler sees the message's round (for Lemma 24 rotation).
    fn hint(&self, msg: &RoundMsg) -> u64 {
        msg.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConstantDelay, Crash, CrashSchedule, RotatingBlockDelay, Simulation};

    fn spread(values: &[f64]) -> f64 {
        values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn rules_apply() {
        assert_eq!(RoundRule::Midpoint.apply(&[0.0, 4.0, 1.0]), 2.0);
        assert!((RoundRule::Mean.apply(&[0.0, 4.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lockstep_rounds_without_faults() {
        // f = 1, no crashes, constant delays: everyone hears everyone
        // who is fast enough; with constant delays all n messages arrive
        // together, so each agent still acts on the first n − 1 by seq
        // order — the engine is deterministic.
        let alg = RoundBased::new(RoundRule::Midpoint, 10);
        let mut sim = Simulation::new(
            alg,
            &[0.0, 1.0, 0.5, 0.75],
            1,
            Box::new(ConstantDelay::new(0.9)),
            CrashSchedule::none(),
        );
        sim.run_to_quiescence(1_000_000);
        let outs = sim.outputs();
        assert!(spread(&outs) < 0.05, "rounds contract: {outs:?}");
        // 10 rounds complete within 10 normalised time units.
        assert!(sim.time() <= 10.0 * 0.9 + 1e-9);
    }

    #[test]
    fn survives_crashes() {
        let alg = RoundBased::new(RoundRule::Mean, 12);
        let crashes = CrashSchedule::new(vec![Crash {
            agent: 3,
            fatal_broadcast: 2,
            final_recipients: 0b0001,
        }]);
        let mut sim = Simulation::new(
            alg,
            &[0.0, 1.0, 0.5, 0.9],
            1,
            Box::new(ConstantDelay::new(1.0)),
            crashes,
        );
        sim.run_to_quiescence(1_000_000);
        assert!(sim.is_dead(3));
        let correct: Vec<f64> = sim.correct_outputs().iter().map(|&(_, y)| y).collect();
        assert!(
            spread(&correct) < 0.05,
            "correct agents keep contracting despite the crash: {correct:?}"
        );
    }

    #[test]
    fn rotating_block_scheduler_drives_rounds() {
        let n = 4;
        let f = 1;
        let alg = RoundBased::new(RoundRule::Midpoint, 8);
        let mut sim = Simulation::new(
            alg,
            &[0.0, 1.0, 1.0, 1.0],
            f,
            Box::new(RotatingBlockDelay::new(n, f, 0.5)),
            CrashSchedule::none(),
        );
        sim.run_to_quiescence(1_000_000);
        // All agents completed all 8 rounds.
        for i in 0..n {
            let hist = &sim.state(i).history;
            assert_eq!(hist.last().expect("history").0, 8);
        }
        // Spread strictly contracted.
        let outs = sim.outputs();
        assert!(spread(&outs) < 0.2);
    }

    #[test]
    fn stale_messages_ignored() {
        let alg = RoundBased::new(RoundRule::Mean, 4);
        let (mut st, _) = alg.init(0, 0.5, 3, 1);
        // Complete round 1 with two messages (n − f = 2).
        let out1 = alg.on_receive(0, &mut st, 0, &(1, 0.5));
        assert!(out1.is_empty());
        let out2 = alg.on_receive(0, &mut st, 1, &(1, 1.0));
        assert_eq!(out2.len(), 1, "round 2 broadcast issued");
        // A late round-1 message changes nothing.
        let out3 = alg.on_receive(0, &mut st, 2, &(1, 7.0));
        assert!(out3.is_empty());
        assert!((alg.output(&st) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn early_future_round_messages_buffered() {
        let alg = RoundBased::new(RoundRule::Mean, 4);
        let (mut st, _) = alg.init(0, 0.0, 3, 1);
        // A round-2 message arrives before round 1 completes.
        let out = alg.on_receive(0, &mut st, 1, &(2, 0.8));
        assert!(out.is_empty());
        // Round 1 completes; round 2 already has one message buffered,
        // so the agent's own round-2 value plus the buffered one complete
        // round 2 immediately after its own round-2 self-delivery.
        let out = alg.on_receive(0, &mut st, 0, &(1, 0.0));
        assert!(out.is_empty(), "self message alone: 1 < n - f");
        let out = alg.on_receive(0, &mut st, 2, &(1, 0.4));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
    }
}
