//! Asynchronous message passing with crash faults (paper §8).
//!
//! §8 of *“Tight Bounds for Asymptotic and Approximate Consensus”*
//! contrasts two kinds of algorithms in the classical asynchronous
//! message-passing model with up to `f` crashes:
//!
//! * **Round-based** algorithms (wait for `n − f` round-`t` messages,
//!   update, broadcast round `t+1`): each asynchronous round delivers, to
//!   each agent, messages along *some* graph with in-degree ≥ `n − f` —
//!   i.e. a graph of the network model `N_A(n, f)`. Theorem 6: their
//!   contraction rate is ≥ `1/(⌈n/f⌉ + 1)` (per round, and by the delay
//!   normalisation also per time unit).
//! * **General** (non-round-based) algorithms: [`min_relay::MinRelay`] reaches
//!   *exact* agreement among correct agents by time `f + 1`
//!   (Theorem 7), i.e. contraction rate 0 — the “price of rounds”.
//!
//! The crate provides:
//!
//! * [`engine`] — a deterministic discrete-event simulator: per-message
//!   delays in `(0, 1]` (time is normalised to the largest end-to-end
//!   delay, as in the paper), broadcast-counted **unclean crashes** (the
//!   final broadcast reaches only a chosen subset);
//! * [`rounds`] — the round-based executor running any
//!   [`rounds::RoundRule`] (midpoint, mean) on the engine;
//! * [`min_relay`] — the MinRelay algorithm of Theorem 7;
//! * [`na_adversary`] — value-aware worst-case schedulers for the
//!   synchronous `N_A(n, f)` view of round-based algorithms
//!   (rotating Lemma 24 blocks, and the split-omission scheduler that
//!   drives averaging to its `~f/(n−f)` worst case).
//!
//! # Example
//!
//! ```
//! use consensus_asyncsim::min_relay::{self, MinRelay};
//! use consensus_asyncsim::engine::{ConstantDelay, CrashSchedule, Simulation};
//!
//! // 4 agents, 1 cascading crash: exact agreement by time f + 1 = 2.
//! let crashes = min_relay::cascade_crashes(4, 1);
//! let mut sim = Simulation::new(
//!     MinRelay,
//!     &[0.0, 1.0, 2.0, 3.0],
//!     1,
//!     Box::new(ConstantDelay::new(1.0)),
//!     crashes,
//! );
//! sim.run_until(2.0 + 1e-9);
//! let outs = sim.correct_outputs();
//! assert!(outs.iter().all(|&(_, y)| y == 0.0), "all decided min by f+1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod min_relay;
pub mod na_adversary;
pub mod rounds;
