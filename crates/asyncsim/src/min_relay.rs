//! The **MinRelay** algorithm (paper §8.2, Theorem 7).
//!
//! MinRelay is *not* round-based: it is a non-terminating reliable
//! broadcast. Each agent keeps the set `S_i` of initial values it knows
//! (initially its own) and outputs `y_i = min(S_i)`. Whenever it
//! receives a set `S ⊄ S_i`, it merges and rebroadcasts.
//!
//! Theorem 7: with up to `f < n` crashes, all correct agents' sets (and
//! hence outputs) are **equal by time `f + 1`** — contraction rate 0.
//! Compare with Theorem 6: any *round-based* algorithm is stuck at rate
//! ≥ `1/(⌈n/f⌉+1)`. This is the paper's “price of rounds”.

use crate::engine::{AsyncAlgorithm, Crash, CrashSchedule};

/// The MinRelay algorithm. Values are compared with `f64::total_cmp`;
/// sets are kept sorted and deduplicated so state equality is structural.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinRelay;

/// State: the known set of initial values, sorted ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct MinRelayState {
    /// Sorted, deduplicated known initial values.
    pub known: Vec<f64>,
}

impl MinRelayState {
    fn merge(&mut self, other: &[f64]) -> bool {
        let mut changed = false;
        for &v in other {
            if let Err(pos) = self.known.binary_search_by(|x| x.total_cmp(&v)) {
                self.known.insert(pos, v);
                changed = true;
            }
        }
        changed
    }
}

impl AsyncAlgorithm for MinRelay {
    type State = MinRelayState;
    /// The full known set (the paper broadcasts `S_i`).
    type Msg = Vec<f64>;

    fn name(&self) -> String {
        "min-relay".into()
    }

    fn init(&self, _agent: usize, y0: f64, _n: usize, _f: usize) -> (MinRelayState, Vec<Vec<f64>>) {
        let st = MinRelayState { known: vec![y0] };
        let msg = st.known.clone();
        (st, vec![msg])
    }

    fn on_receive(
        &self,
        _agent: usize,
        state: &mut MinRelayState,
        _from: usize,
        msg: &Vec<f64>,
    ) -> Vec<Vec<f64>> {
        if state.merge(msg) {
            vec![state.known.clone()]
        } else {
            Vec::new()
        }
    }

    fn output(&self, state: &MinRelayState) -> f64 {
        *state
            .known
            .first()
            .expect("the agent always knows its own value")
    }
}

/// The worst-case **cascading crash schedule** used to show the `f + 1`
/// time bound of Theorem 7 is tight: agent 0 (which should hold the
/// minimum value) relays it to agent 1 only and dies; agent 1 relays to
/// agent 2 only and dies; … agent `f−1` relays to agent `f` only and
/// dies. The minimum thus needs `f + 1` hops of delay ≤ 1 each to reach
/// the last correct agents.
///
/// # Panics
///
/// Panics if `f ≥ n`.
#[must_use]
pub fn cascade_crashes(n: usize, f: usize) -> CrashSchedule {
    assert!(f < n, "need f < n");
    let crashes = (0..f)
        .map(|k| Crash {
            agent: k,
            // Broadcast #0 is the initial value broadcast for agent 0;
            // for agents k ≥ 1 the fatal broadcast is the relay they
            // emit after learning the minimum (their second broadcast).
            fatal_broadcast: if k == 0 { 0 } else { 1 },
            final_recipients: 1u64 << (k + 1),
        })
        .collect();
    CrashSchedule::new(crashes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConstantDelay, RandomDelay, Simulation};

    #[test]
    fn no_crashes_agreement_by_time_one() {
        let mut sim = Simulation::new(
            MinRelay,
            &[3.0, 1.0, 2.0, 5.0],
            1,
            Box::new(ConstantDelay::new(1.0)),
            CrashSchedule::none(),
        );
        sim.run_until(1.0 + 1e-12);
        let outs = sim.correct_outputs();
        assert!(
            outs.iter().all(|&(_, y)| y == 1.0),
            "minimum known everywhere by time 1: {outs:?}"
        );
    }

    #[test]
    fn theorem7_agreement_by_f_plus_1() {
        for f in 1..=3 {
            let n = 5;
            // Agent 0 holds the unique minimum; everyone else starts at 1,
            // so only the minimum's arrival triggers relays and the
            // cascade's fatal-broadcast indices line up.
            let mut inits = vec![1.0; n];
            inits[0] = 0.0;
            let mut sim = Simulation::new(
                MinRelay,
                &inits,
                f,
                Box::new(ConstantDelay::new(1.0)),
                cascade_crashes(n, f),
            );
            sim.run_until(f as f64 + 1.0 + 1e-9);
            let outs = sim.correct_outputs();
            assert_eq!(outs.len(), n - f);
            assert!(
                outs.iter().all(|&(_, y)| y == 0.0),
                "f = {f}: exact agreement on the min by time f+1; got {outs:?}"
            );
            assert_eq!(sim.correct_diameter(), 0.0, "contraction rate 0");
        }
    }

    #[test]
    fn cascade_is_tight_before_f_plus_1() {
        // Just before time f + 1 the last agents have not yet heard the
        // minimum — the bound is tight for this schedule.
        let f = 2;
        let n = 5;
        let mut inits = vec![1.0; n];
        inits[0] = 0.0;
        let mut sim = Simulation::new(
            MinRelay,
            &inits,
            f,
            Box::new(ConstantDelay::new(1.0)),
            cascade_crashes(n, f),
        );
        sim.run_until(f as f64 + 1.0 - 0.5);
        let outs = sim.correct_outputs();
        assert!(
            outs.iter().any(|&(_, y)| y != 0.0),
            "the minimum must still be in flight at time f + 1/2: {outs:?}"
        );
    }

    #[test]
    fn validity_min_of_initials() {
        let mut sim = Simulation::new(
            MinRelay,
            &[0.4, 0.9, 0.7],
            1,
            Box::new(RandomDelay::new(0.3, 11)),
            CrashSchedule::none(),
        );
        sim.run_to_quiescence(100_000);
        for (_, y) in sim.correct_outputs() {
            assert_eq!(y, 0.4, "limit is min of initial values (validity)");
        }
    }

    #[test]
    fn quiescence_is_guaranteed() {
        // Sets only grow and are bounded by n distinct values, so the
        // protocol quiesces after finitely many broadcasts.
        let mut sim = Simulation::new(
            MinRelay,
            &[5.0, 4.0, 3.0, 2.0, 1.0, 0.0],
            2,
            Box::new(RandomDelay::new(0.1, 3)),
            CrashSchedule::none(),
        );
        sim.run_to_quiescence(1_000_000);
        assert_eq!(sim.correct_diameter(), 0.0);
    }

    #[test]
    fn merge_dedups() {
        let mut st = MinRelayState {
            known: vec![1.0, 3.0],
        };
        assert!(st.merge(&[2.0, 3.0]));
        assert_eq!(st.known, vec![1.0, 2.0, 3.0]);
        assert!(!st.merge(&[1.0, 2.0]));
    }
}
