//! Value-aware worst-case schedulers for the `N_A(n, f)` view of
//! round-based algorithms (paper §8.1).
//!
//! A round of a round-based asynchronous algorithm is equivalent to one
//! synchronous round under a communication graph from `N_A(n, f)` (every
//! agent hears ≥ `n − f` agents — whichever messages the scheduler lets
//! arrive first). Worst-case *scheduling* therefore equals worst-case
//! *graph choice*, and the schedulers here are
//! [`Driver`]s choosing graphs
//! from the current values, pluggable into
//! [`Scenario`](consensus_dynamics::Scenario) — see the crate
//! example below:
//!
//! * [`SplitOmission`] — hides the `f` lowest senders from the top half
//!   of receivers and the `f` highest senders from the bottom half.
//!   Against averaging rules this forces the `~f/(n−f)` per-round
//!   contraction that matches the `1/(⌈n/f⌉−1)` upper end of Table 1's
//!   round-based interval.
//! * [`IsolateMinority`] — the `f` extreme agents are unheard by the
//!   rest (midpoint's async worst case: exactly `1/2` per round).
//! * [`RotatingBlocks`] — applies the Lemma 24 graphs `K_1, K_2, …`
//!   cyclically (block `r` unheard in round `r`).
//!
//! ```
//! use consensus_algorithms::MeanValue;
//! use consensus_asyncsim::na_adversary::{bipolar_inits, SplitOmission};
//! use consensus_dynamics::Scenario;
//!
//! let trace = Scenario::new(MeanValue, &bipolar_inits(6))
//!     .adversary(SplitOmission::new(2))
//!     .run(20);
//! // f/(n−f) = 1/2 per round for the mean rule on bipolar values.
//! assert!((trace.rates().steady_state - 0.5).abs() < 0.1);
//! ```

use consensus_algorithms::{Algorithm, Point};
use consensus_digraph::{families, Digraph};
use consensus_dynamics::scenario::Driver;
use consensus_dynamics::Execution;

/// Sorts agent indices by current scalar output (ascending).
fn order_by_value<A, const D: usize>(exec: &Execution<A, D>) -> Vec<usize>
where
    A: Algorithm<D>,
{
    let outs = exec.outputs_slice();
    let mut idx: Vec<usize> = (0..exec.n()).collect();
    idx.sort_by(|&a, &b| outs[a][0].total_cmp(&outs[b][0]));
    idx
}

/// The split-omission graph for the current values: receivers in the top
/// half do not hear the `f` lowest-valued senders; receivers in the
/// bottom half do not hear the `f` highest-valued senders. Every
/// in-degree is exactly `n − f` (self-loops are kept), so the graph is
/// in `N_A(n, f)`.
#[must_use]
pub fn split_omission_graph<A, const D: usize>(exec: &Execution<A, D>, f: usize) -> Digraph
where
    A: Algorithm<D>,
{
    let n = exec.n();
    assert!(f >= 1 && f < n, "need 0 < f < n");
    let order = order_by_value(exec);
    let lowest: u64 = order[..f].iter().map(|&i| 1u64 << i).sum();
    let highest: u64 = order[n - f..].iter().map(|&i| 1u64 << i).sum();
    let all = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut masks = vec![0u64; n];
    for (rank, &agent) in order.iter().enumerate() {
        let hide = if rank < n / 2 { highest } else { lowest };
        masks[agent] = all & !hide;
    }
    Digraph::from_in_masks(&masks).expect("n validated")
}

/// The minority-isolation graph: the `f` extreme-valued agents (the side
/// currently farther from the rest) are unheard by everyone else, while
/// they themselves hear everyone. In-degrees are ≥ `n − f`, so the graph
/// is in `N_A(n, f)`. Against the midpoint rule this pins the majority
/// and halves the spread each round — midpoint's async worst case.
#[must_use]
pub fn isolate_minority_graph<A, const D: usize>(exec: &Execution<A, D>, f: usize) -> Digraph
where
    A: Algorithm<D>,
{
    let n = exec.n();
    assert!(f >= 1 && f < n, "need 0 < f < n");
    let order = order_by_value(exec);
    let minority: u64 = order[..f].iter().map(|&i| 1u64 << i).sum();
    let all = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut masks = vec![0u64; n];
    for (agent, mask) in masks.iter_mut().enumerate() {
        *mask = if minority & (1u64 << agent) != 0 {
            all
        } else {
            all & !minority
        };
    }
    Digraph::from_in_masks(&masks).expect("n validated")
}

/// The split-omission scheduler as a [`Driver`]; its per-round ratios
/// approach `f/(n−f)` for the mean rule and `1/2` for midpoint.
#[derive(Debug, Clone, Copy)]
pub struct SplitOmission {
    f: usize,
}

impl SplitOmission {
    /// Creates the scheduler hiding `f ≥ 1` senders per receiver.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0`.
    #[must_use]
    pub fn new(f: usize) -> Self {
        assert!(f >= 1, "need at least one omission");
        SplitOmission { f }
    }
}

impl<A: Algorithm<D>, const D: usize> Driver<A, D> for SplitOmission {
    fn next_block(&mut self, exec: &Execution<A, D>, out: &mut Vec<Digraph>) {
        out.push(split_omission_graph(exec, self.f));
    }
}

/// The minority-isolation scheduler as a [`Driver`] (worst case for
/// midpoint-like rules: per-round ratio `1/2`).
#[derive(Debug, Clone, Copy)]
pub struct IsolateMinority {
    f: usize,
}

impl IsolateMinority {
    /// Creates the scheduler isolating the `f ≥ 1` extreme agents.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0`.
    #[must_use]
    pub fn new(f: usize) -> Self {
        assert!(f >= 1, "need at least one isolated agent");
        IsolateMinority { f }
    }
}

impl<A: Algorithm<D>, const D: usize> Driver<A, D> for IsolateMinority {
    fn next_block(&mut self, exec: &Execution<A, D>, out: &mut Vec<Digraph>) {
        out.push(isolate_minority_graph(exec, self.f));
    }
}

/// The Lemma 24 rotation as a [`Driver`]: in round `t` the witness
/// graph `K_{(t mod q) + 1}` is applied, `q = ⌈n/f⌉` (block `t mod q`
/// unheard by everyone).
#[derive(Debug, Clone, Copy)]
pub struct RotatingBlocks {
    f: usize,
}

impl RotatingBlocks {
    /// Creates the rotation for `f ≥ 1` crashes.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0`.
    #[must_use]
    pub fn new(f: usize) -> Self {
        assert!(f >= 1, "need at least one crash");
        RotatingBlocks { f }
    }
}

impl<A: Algorithm<D>, const D: usize> Driver<A, D> for RotatingBlocks {
    fn next_block(&mut self, exec: &Execution<A, D>, out: &mut Vec<Digraph>) {
        let n = exec.n();
        assert!(self.f < n, "need 0 < f < n");
        let q = n.div_ceil(self.f);
        let t = exec.round() as usize;
        out.push(families::lemma24_k(n, self.f, (t % q) + 1));
    }
}

/// Initial values that witness the worst case of the split-omission
/// scheduler: half the agents at 0, half at 1 (ties broken by index).
#[must_use]
pub fn bipolar_inits(n: usize) -> Vec<Point<1>> {
    (0..n)
        .map(|i| Point([if i < n / 2 { 0.0 } else { 1.0 }]))
        .collect()
}

/// Initial values that witness the worst case of the minority-isolation
/// scheduler for midpoint-like rules: `f` agents at 0, the rest at 1.
#[must_use]
pub fn minority_inits(n: usize, f: usize) -> Vec<Point<1>> {
    (0..n)
        .map(|i| Point([if i < f { 0.0 } else { 1.0 }]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_algorithms::{MeanValue, Midpoint};
    use consensus_dynamics::Scenario;

    #[test]
    fn split_graph_is_in_na() {
        let n = 6;
        let f = 2;
        let exec = Execution::new(MeanValue, &bipolar_inits(n));
        let g = split_omission_graph(&exec, f);
        for i in 0..n {
            assert!(g.in_degree(i) >= n - f, "in-degree ≥ n − f");
            assert!(g.has_edge(i, i));
        }
    }

    #[test]
    fn mean_contracts_at_f_over_n_minus_f() {
        // The split-omission worst case for averaging: per-round ratio
        // → f/(n−f) (= 1/(⌈n/f⌉−1) when f divides n).
        for (n, f) in [(4usize, 1usize), (6, 2), (8, 2)] {
            let trace = Scenario::new(MeanValue, &bipolar_inits(n))
                .adversary(SplitOmission::new(f))
                .run(20);
            let rate = trace.rates().steady_state;
            let target = f as f64 / (n - f) as f64;
            assert!(
                (rate - target).abs() < 0.12 * target.max(0.2),
                "n={n}, f={f}: measured {rate}, expected ≈ {target}"
            );
        }
    }

    #[test]
    fn midpoint_contracts_at_half_under_minority_isolation() {
        let n = 6;
        let f = 1;
        let trace = Scenario::new(Midpoint, &minority_inits(n, f))
            .adversary(IsolateMinority::new(f))
            .run(16);
        let rate = trace.rates().steady_state;
        assert!(
            (rate - 0.5).abs() < 1e-9,
            "midpoint's async-round worst case is exactly 1/2: {rate}"
        );
    }

    #[test]
    fn mean_beats_midpoint_in_na_rounds() {
        // The Table 1 “who wins” shape: comparing *worst-case* per-round
        // rates in N_A(n, f) with small f/n, averaging (Fekete-style [18])
        // contracts faster than midpoint (1/2).
        let n = 8;
        let f = 1;
        // Mean's worst case: split omissions on bipolar values.
        let rm = Scenario::new(MeanValue, &bipolar_inits(n))
            .adversary(SplitOmission::new(f))
            .run(16)
            .rates()
            .steady_state;
        // Mean under the midpoint-worst-case scheduler is even faster.
        let rm2 = Scenario::new(MeanValue, &minority_inits(n, f))
            .adversary(IsolateMinority::new(f))
            .run(16)
            .rates()
            .steady_state;
        // Midpoint's worst case: isolated extreme minority.
        let rd = Scenario::new(Midpoint, &minority_inits(n, f))
            .adversary(IsolateMinority::new(f))
            .run(16)
            .rates()
            .steady_state;
        let mean_worst = rm.max(rm2);
        assert!(
            mean_worst < rd - 0.2,
            "mean (worst {mean_worst}) must beat midpoint ({rd})"
        );
    }

    #[test]
    fn rotating_blocks_stay_valid() {
        let n = 5;
        let f = 2;
        let trace = Scenario::new(Midpoint, &bipolar_inits(n))
            .adversary(RotatingBlocks::new(f))
            .run(12);
        assert!(trace.validity_holds(1e-9));
        assert!(trace.final_diameter() < trace.initial_diameter());
    }

    #[test]
    fn theorem6_floor_respected() {
        // No round-based schedule can contract *faster* than the
        // Theorem 6 floor 1/(⌈n/f⌉+1) in the worst case — check that the
        // measured worst-case rate of the best rule (mean) stays above.
        for (n, f) in [(4usize, 1usize), (6, 2)] {
            let q = n.div_ceil(f) as f64;
            let floor = 1.0 / (q + 1.0);
            let trace = Scenario::new(MeanValue, &bipolar_inits(n))
                .adversary(SplitOmission::new(f))
                .run(20);
            let rate = trace.rates().steady_state;
            assert!(
                rate >= floor - 1e-9,
                "n={n}, f={f}: measured {rate} below the Theorem 6 floor {floor}"
            );
        }
    }
}
