//! The sharded large-`n` executor: flat scalar state, sparse
//! topologies, intra-round parallelism.
//!
//! [`Execution`](crate::Execution) is the reference stepper: generic
//! over algorithm state, dense `u64`-mask graphs, `n ≤ 64`.
//! [`ShardedExecution`] is the production-scale path for scalar
//! ([`Point<1>`](consensus_algorithms::Point)) algorithms at
//! `n ≈ 10⁵–10⁶`:
//!
//! * **SoA state** — all agent values live in one flat `Vec<f64>`
//!   (double-buffered), stepped through a [`ScalarKernel`] in
//!   cache-friendly chunks instead of per-agent `Point<1>` wrappers;
//! * **sparse topologies** — rounds step over anything implementing
//!   [`RoundTopology`]: the dense [`Digraph`](consensus_digraph::Digraph)
//!   mask path or a [`CsrDigraph`](consensus_digraph::CsrDigraph) CSR
//!   row per agent, borrowed with zero per-round allocation;
//! * **intra-round sharding** — agents are split into chunks and
//!   stepped on the work-stealing pool
//!   ([`consensus_pool::for_each_chunk_mut`]). Writes are disjoint and
//!   each agent's update is a pure function of the previous round, so
//!   results are **bit-identical at every thread count** — and, by the
//!   [`ScalarKernel`] contract, bit-identical to the dense
//!   [`Execution`](crate::Execution) wherever both apply (`n ≤ 64`).
//!   The `tests/large_executor.rs` identity suite pins both claims.

use consensus_algorithms::{Inbox, ScalarKernel};
use consensus_digraph::{RoundTopology, WordSet};

use crate::byzantine::ByzantineStrategy;

/// Default agents-per-chunk for intra-round sharding: large enough to
/// amortize scheduling, small enough to load-balance a million agents
/// over any realistic core count.
pub const DEFAULT_CHUNK: usize = 4096;

/// A large-`n` execution of a scalar algorithm: one `f64` per agent,
/// advanced one communication-closed round at a time.
///
/// See the module docs for the design; see
/// [`crate::DiameterTrace`] for recording at this scale (a full
/// [`Trace`](crate::Trace) clones every round's outputs, which at
/// `n = 10⁶` is the difference between megabytes and gigabytes).
#[derive(Debug, Clone)]
pub struct ShardedExecution<K: ScalarKernel + Sync> {
    alg: K,
    /// Current value per agent (the SoA state).
    vals: Vec<f64>,
    /// Double buffer for the next round's values.
    next: Vec<f64>,
    /// Reused per-round message slate.
    msgs: Vec<f64>,
    /// Reused forged-slate scratch for [`ShardedExecution::step_with_faults`].
    fault_msgs: Vec<f64>,
    /// Reused per-chunk `(min, max, receptions)` slots for
    /// [`ShardedExecution::step_observed`].
    stat_buf: Vec<(f64, f64, u64)>,
    round: u64,
    threads: usize,
    chunk: usize,
}

impl<K: ScalarKernel + Sync> ShardedExecution<K> {
    /// Starts an execution of `alg` from the given initial values (one
    /// per agent — any `n ≥ 1`, there is no 64-agent cap here).
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty.
    #[must_use]
    pub fn new(alg: K, inits: &[f64]) -> Self {
        assert!(!inits.is_empty(), "need at least one agent");
        ShardedExecution {
            alg,
            vals: inits.to_vec(),
            next: vec![0.0; inits.len()],
            msgs: Vec::with_capacity(inits.len()),
            fault_msgs: Vec::new(),
            stat_buf: Vec::new(),
            round: 0,
            threads: consensus_pool::default_threads(),
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Sets the worker count for intra-round sharding (1 ⇒ sequential).
    /// Thread count never affects results, only wall-clock time.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the agents-per-chunk granularity of intra-round sharding.
    /// Chunk size never affects results, only load balance.
    #[must_use]
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The number of agents.
    #[must_use]
    pub fn n(&self) -> usize {
        self.vals.len()
    }

    /// The number of completed rounds.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The algorithm being executed.
    #[must_use]
    pub fn algorithm(&self) -> &K {
        &self.alg
    }

    /// The current value vector, borrowed — no allocation.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// The current value spread `Δ(y(t))` — one `max − min` scan (for
    /// scalars the Euclidean and box diameters coincide).
    #[must_use]
    pub fn value_diameter(&self) -> f64 {
        let (lo, hi) = min_max(&self.vals);
        hi - lo
    }

    /// Executes one round with topology `g`: gather every agent's
    /// broadcast once into the shared slate, then step all agents in
    /// parallel chunks, each reading its in-neighborhood through a
    /// borrowed [`Inbox`] and writing its slot of the double buffer.
    ///
    /// # Panics
    ///
    /// Panics if `g.n() != self.n()`.
    pub fn step<G: RoundTopology>(&mut self, g: &G) {
        assert_eq!(g.n(), self.n(), "graph size must match agent count");
        self.round += 1;
        let round = self.round;
        let ShardedExecution {
            alg,
            vals,
            next,
            msgs,
            threads,
            chunk,
            ..
        } = self;
        msgs.clear();
        msgs.extend(vals.iter().map(|&v| alg.message_scalar(v)));
        let (alg, vals, msgs) = (&*alg, &*vals, &*msgs);
        consensus_pool::for_each_chunk_mut(next, *chunk, *threads, |start, out| {
            for (k, slot) in out.iter_mut().enumerate() {
                let i = start + k;
                let inbox = Inbox::from_senders(g.sender_set(i), msgs);
                *slot = alg.step_scalar(i, vals[i], inbox, round);
            }
        });
        std::mem::swap(&mut self.vals, &mut self.next);
    }

    /// [`ShardedExecution::step`] with round-level telemetry: wraps the
    /// round in a `round` span and emits the resulting diameter, the
    /// contraction ratio Δ(t)/Δ(t−1), and the round's reception count
    /// through `tel`, plus a profile-class `shard_imbalance` gauge
    /// (max/mean chunks per worker) when the round ran on several
    /// workers.
    ///
    /// The reception count rides the parallel chunk pass
    /// ([`consensus_pool::for_each_chunk_mut_stat`]): each chunk fills
    /// its own statistics slot and the slots are reduced in chunk-index
    /// order, so the observed step stays bit-identical to
    /// [`ShardedExecution::step`] at every thread count. The diameter
    /// is one sequential unrolled scan after the swap (the `min_max`
    /// helper's shape is fixed, so it too never depends on the worker
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if `g.n() != self.n()`.
    pub fn step_observed<G: RoundTopology>(
        &mut self,
        g: &G,
        tel: &mut consensus_obs::RoundTelemetry,
    ) {
        assert_eq!(g.n(), self.n(), "graph size must match agent count");
        if !tel.needs_diameter(self.round + 1) {
            // A decimated round no emitted ratio depends on: run the
            // plain step — zero telemetry overhead.
            self.step(g);
            return;
        }
        self.round += 1;
        let round = self.round;
        tel.begin_round(round);
        let ShardedExecution {
            alg,
            vals,
            next,
            msgs,
            stat_buf,
            threads,
            chunk,
            ..
        } = self;
        msgs.clear();
        msgs.extend(vals.iter().map(|&v| alg.message_scalar(v)));
        let (alg, vals, msgs) = (&*alg, &*vals, &*msgs);
        // One (min, max, receptions) slot per chunk, reduced in chunk
        // order below — no cross-worker accumulation anywhere. The
        // buffer is reused across rounds so the observed step performs
        // no per-round allocation; the step loop itself is identical to
        // [`ShardedExecution::step`]'s, and the chunk's extremes come
        // from a cache-hot [`min_max`] pass over the freshly written
        // slots rather than a fold inside the hot loop. Any reduction
        // shape over finite values yields the same extreme bits, and
        // the chunk grid is a pure function of `n` and `chunk`, so the
        // emitted diameter never depends on the worker count.
        let n_chunks = next.len().div_ceil(*chunk);
        stat_buf.clear();
        stat_buf.resize(n_chunks, (f64::INFINITY, f64::NEG_INFINITY, 0));
        let per_worker = consensus_pool::for_each_chunk_mut_stat(
            next,
            stat_buf,
            *chunk,
            *threads,
            |start, out, stat| {
                let mut recv = 0u64;
                for (k, slot) in out.iter_mut().enumerate() {
                    let i = start + k;
                    let senders = g.sender_set(i);
                    recv += senders.len() as u64;
                    let inbox = Inbox::from_senders(senders, msgs);
                    *slot = alg.step_scalar(i, vals[i], inbox, round);
                }
                let (lo, hi) = min_max(out);
                *stat = (lo, hi, recv);
            },
        );
        std::mem::swap(&mut self.vals, &mut self.next);
        let (mut lo, mut hi, mut receptions) = (f64::INFINITY, f64::NEG_INFINITY, 0u64);
        for &(clo, chi, crecv) in &self.stat_buf {
            lo = lo.min(clo);
            hi = hi.max(chi);
            receptions += crecv;
        }
        tel.end_round(round, hi - lo, receptions);
        if per_worker.len() > 1 {
            let max = per_worker.iter().copied().max().unwrap_or(0) as f64;
            let mean = per_worker.iter().sum::<u64>() as f64 / per_worker.len() as f64;
            if mean > 0.0 {
                tel.recorder_mut()
                    .profile_gauge("shard_imbalance", round, max / mean);
            }
        }
    }

    /// Executes one round with the agents in `byzantine` replaced by
    /// `strategy`: honest agents receive the slate with the liars'
    /// slots overwritten per receiver (two-faced faults), Byzantine
    /// agents' values are frozen. The fault path is sequential — the
    /// strategy is stateful (`&mut`) and must see receivers in agent
    /// order to stay deterministic, exactly like the dense
    /// [`Execution::step_with_faults`](crate::Execution::step_with_faults).
    ///
    /// # Panics
    ///
    /// Panics if `g.n() != self.n()` or every agent is Byzantine.
    pub fn step_with_faults<G: RoundTopology>(
        &mut self,
        g: &G,
        byzantine: &WordSet,
        strategy: &mut dyn ByzantineStrategy,
    ) {
        assert_eq!(g.n(), self.n(), "graph size must match agent count");
        let n = self.n();
        assert!(
            (0..n).any(|i| !byzantine.contains(i)),
            "at least one honest agent required"
        );
        self.round += 1;
        let round = self.round;
        self.msgs.clear();
        let alg = &self.alg;
        self.msgs
            .extend(self.vals.iter().map(|&v| alg.message_scalar(v)));
        // Reused scratch slate: forge only the liars' slots per
        // receiver and restore them afterwards — O(deg) per receiver,
        // no allocation.
        self.fault_msgs.clear();
        self.fault_msgs.extend(self.msgs.iter().copied());
        for i in 0..n {
            if byzantine.contains(i) {
                self.next[i] = self.vals[i];
                continue;
            }
            let senders = g.sender_set(i);
            for j in senders.iter().filter(|&j| byzantine.contains(j)) {
                self.fault_msgs[j] = strategy.forge(round, j, i);
            }
            let inbox = Inbox::from_senders(senders, &self.fault_msgs);
            self.next[i] = self.alg.step_scalar(i, self.vals[i], inbox, round);
            for j in senders.iter().filter(|&j| byzantine.contains(j)) {
                self.fault_msgs[j] = self.msgs[j];
            }
        }
        std::mem::swap(&mut self.vals, &mut self.next);
    }
}

/// `(min, max)` of a value vector in one pass, unrolled into four
/// independent accumulator lanes so the chain of `min`/`max` data
/// dependencies doesn't serialise the scan. The lane shape is fixed
/// (it depends only on `xs.len()`), so the result is deterministic —
/// and since `f64::min`/`f64::max` return one of their (finite)
/// operands, it is bit-identical to the naive left-to-right fold.
fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut lo = [f64::INFINITY; 4];
    let mut hi = [f64::NEG_INFINITY; 4];
    let mut chunks = xs.chunks_exact(4);
    for c in &mut chunks {
        for j in 0..4 {
            lo[j] = lo[j].min(c[j]);
            hi[j] = hi[j].max(c[j]);
        }
    }
    for (j, &v) in chunks.remainder().iter().enumerate() {
        lo[j] = lo[j].min(v);
        hi[j] = hi[j].max(v);
    }
    (
        lo[0].min(lo[1]).min(lo[2]).min(lo[3]),
        hi[0].max(hi[1]).max(hi[2]).max(hi[3]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::SplitAttack;
    use crate::Execution;
    use consensus_algorithms::{MeanValue, Midpoint, Point, SelfWeightedAverage};
    use consensus_digraph::{CsrDigraph, Digraph};

    fn inits(n: usize) -> Vec<f64> {
        // Deterministic, non-uniform, sign-mixed values.
        (0..n)
            .map(|i| ((i * 2_654_435_761 % 1_000_003) as f64) / 1_000_003.0 - 0.5)
            .collect()
    }

    #[test]
    fn matches_dense_execution_bitwise_at_small_n() {
        let vals = inits(23);
        let pts: Vec<Point<1>> = vals.iter().map(|&v| Point([v])).collect();
        let g = Digraph::complete(23).make_deaf(4);
        let csr = CsrDigraph::from_dense(&g);
        for threads in [1, 2, 7] {
            let mut dense = Execution::new(Midpoint, &pts);
            let mut shard = ShardedExecution::new(Midpoint, &vals)
                .threads(threads)
                .chunk_size(5);
            let mut shard_csr = ShardedExecution::new(Midpoint, &vals).threads(threads);
            for _ in 0..17 {
                dense.step(&g);
                shard.step(&g);
                shard_csr.step(&csr);
            }
            for i in 0..23 {
                let want = dense.outputs_slice()[i][0].to_bits();
                assert_eq!(want, shard.values()[i].to_bits(), "dense path, agent {i}");
                assert_eq!(want, shard_csr.values()[i].to_bits(), "CSR path, agent {i}");
            }
        }
    }

    #[test]
    fn thread_and_chunk_count_never_change_results() {
        let vals = inits(501);
        let csr = CsrDigraph::ring_lattice(501, 3);
        let mut reference = ShardedExecution::new(MeanValue, &vals).threads(1);
        for _ in 0..9 {
            reference.step(&csr);
        }
        for (threads, chunk) in [(2, 64), (4, 7), (8, 1000)] {
            let mut e = ShardedExecution::new(MeanValue, &vals)
                .threads(threads)
                .chunk_size(chunk);
            for _ in 0..9 {
                e.step(&csr);
            }
            assert_eq!(
                reference.values(),
                e.values(),
                "threads={threads} chunk={chunk}"
            );
        }
    }

    #[test]
    fn runs_well_past_sixty_four_agents() {
        let n = 500;
        let vals = inits(n);
        let csr = CsrDigraph::ring_lattice(n, 2);
        let mut e = ShardedExecution::new(Midpoint, &vals).threads(4);
        let d0 = e.value_diameter();
        for _ in 0..200 {
            e.step(&csr);
        }
        assert_eq!(e.round(), 200);
        assert!(
            e.value_diameter() < d0 * 0.5,
            "spread must contract on a connected lattice"
        );
    }

    #[test]
    fn faulty_step_matches_dense_execution() {
        let vals = inits(9);
        let pts: Vec<Point<1>> = vals.iter().map(|&v| Point([v])).collect();
        let g = Digraph::complete(9);
        let byz_mask: u64 = 0b100000010; // agents 1 and 8
        let mut byz = WordSet::with_capacity(9);
        byz.insert(1);
        byz.insert(8);

        let alg = SelfWeightedAverage::new(0.5);
        let mut dense = Execution::new(alg, &pts);
        let mut shard = ShardedExecution::new(alg, &vals).threads(3);
        let mut s1 = SplitAttack { magnitude: 2.0 };
        let mut s2 = s1;
        for _ in 0..6 {
            dense.step_with_faults(&g, byz_mask, &mut s1);
            shard.step_with_faults(&g, &byz, &mut s2);
        }
        for i in 0..9 {
            assert_eq!(
                dense.outputs_slice()[i][0].to_bits(),
                shard.values()[i].to_bits(),
                "agent {i}"
            );
        }
    }

    #[test]
    fn observed_step_is_bit_identical_to_step() {
        use consensus_obs::{lane, RoundTelemetry, TraceHandle};
        let vals = inits(301);
        let csr = CsrDigraph::ring_lattice(301, 3);
        let mut plain = ShardedExecution::new(MeanValue, &vals)
            .threads(3)
            .chunk_size(37);
        let trace = TraceHandle::enabled();
        let mut tel = RoundTelemetry::new(trace.recorder(0, lane::EXECUTOR).expect("enabled"))
            .initial_diameter(plain.value_diameter());
        let mut observed = ShardedExecution::new(MeanValue, &vals)
            .threads(3)
            .chunk_size(37);
        for _ in 0..7 {
            plain.step(&csr);
            observed.step_observed(&csr, &mut tel);
        }
        assert_eq!(plain.values(), observed.values(), "telemetry is inert");
        trace.commit(tel.finish());
        let s = trace.merged();
        let diameters = s.gauge_values("diameter");
        assert_eq!(diameters.len(), 7);
        assert_eq!(
            diameters[6].to_bits(),
            plain.value_diameter().to_bits(),
            "fused per-chunk reduction equals the value_diameter scan"
        );
        assert_eq!(s.gauge_values("contraction").len(), 7);
        // Ring lattice with k=3: every agent hears 4 agents (self + 3
        // predecessors), for 7 rounds.
        assert_eq!(s.counter_total("messages"), 7 * 301 * 4);
    }

    #[test]
    fn observed_content_is_thread_count_invariant() {
        use consensus_obs::{lane, RoundTelemetry, TraceHandle};
        let vals = inits(200);
        let csr = CsrDigraph::ring_lattice(200, 2);
        let mut streams = Vec::new();
        for threads in [1, 4] {
            let trace = TraceHandle::enabled();
            let mut tel = RoundTelemetry::new(trace.recorder(0, lane::EXECUTOR).expect("enabled"));
            let mut e = ShardedExecution::new(Midpoint, &vals)
                .threads(threads)
                .chunk_size(13);
            for _ in 0..5 {
                e.step_observed(&csr, &mut tel);
            }
            trace.commit(tel.finish());
            streams.push(trace.merged().content());
        }
        assert_eq!(
            streams[0], streams[1],
            "content stream must not depend on the worker count"
        );
    }

    #[test]
    #[should_panic(expected = "graph size")]
    fn size_mismatch_panics() {
        let mut e = ShardedExecution::new(Midpoint, &[0.0, 1.0]);
        e.step(&CsrDigraph::ring_lattice(3, 1));
    }

    #[test]
    #[should_panic(expected = "honest agent")]
    fn all_byzantine_rejected() {
        let mut e = ShardedExecution::new(Midpoint, &[0.0, 1.0]);
        let byz = WordSet::full(2);
        let mut s = |_: u64, _: usize, _: usize| 0.0;
        e.step_with_faults(&Digraph::complete(2), &byz, &mut s);
    }
}
