//! The sharded large-`n` executor: flat scalar state, sparse
//! topologies, intra-round parallelism.
//!
//! [`Execution`](crate::Execution) is the reference stepper: generic
//! over algorithm state, dense `u64`-mask graphs, `n ≤ 64`.
//! [`ShardedExecution`] is the production-scale path for scalar
//! ([`Point<1>`](consensus_algorithms::Point)) algorithms at
//! `n ≈ 10⁵–10⁶`:
//!
//! * **SoA state** — all agent values live in one flat `Vec<f64>`
//!   (double-buffered), stepped through a [`ScalarKernel`] in
//!   cache-friendly chunks instead of per-agent `Point<1>` wrappers;
//! * **sparse topologies** — rounds step over anything implementing
//!   [`RoundTopology`]: the dense [`Digraph`](consensus_digraph::Digraph)
//!   mask path or a [`CsrDigraph`](consensus_digraph::CsrDigraph) CSR
//!   row per agent, borrowed with zero per-round allocation;
//! * **intra-round sharding** — agents are split into chunks and
//!   stepped on the work-stealing pool
//!   ([`consensus_pool::for_each_chunk_mut`]). Writes are disjoint and
//!   each agent's update is a pure function of the previous round, so
//!   results are **bit-identical at every thread count** — and, by the
//!   [`ScalarKernel`] contract, bit-identical to the dense
//!   [`Execution`](crate::Execution) wherever both apply (`n ≤ 64`).
//!   The `tests/large_executor.rs` identity suite pins both claims.

use consensus_algorithms::{Inbox, ScalarKernel};
use consensus_digraph::{RoundTopology, WordSet};

use crate::byzantine::ByzantineStrategy;

/// Default agents-per-chunk for intra-round sharding: large enough to
/// amortize scheduling, small enough to load-balance a million agents
/// over any realistic core count.
pub const DEFAULT_CHUNK: usize = 4096;

/// A large-`n` execution of a scalar algorithm: one `f64` per agent,
/// advanced one communication-closed round at a time.
///
/// See the module docs for the design; see
/// [`crate::DiameterTrace`] for recording at this scale (a full
/// [`Trace`](crate::Trace) clones every round's outputs, which at
/// `n = 10⁶` is the difference between megabytes and gigabytes).
#[derive(Debug, Clone)]
pub struct ShardedExecution<K: ScalarKernel + Sync> {
    alg: K,
    /// Current value per agent (the SoA state).
    vals: Vec<f64>,
    /// Double buffer for the next round's values.
    next: Vec<f64>,
    /// Reused per-round message slate.
    msgs: Vec<f64>,
    /// Reused forged-slate scratch for [`ShardedExecution::step_with_faults`].
    fault_msgs: Vec<f64>,
    round: u64,
    threads: usize,
    chunk: usize,
}

impl<K: ScalarKernel + Sync> ShardedExecution<K> {
    /// Starts an execution of `alg` from the given initial values (one
    /// per agent — any `n ≥ 1`, there is no 64-agent cap here).
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty.
    #[must_use]
    pub fn new(alg: K, inits: &[f64]) -> Self {
        assert!(!inits.is_empty(), "need at least one agent");
        ShardedExecution {
            alg,
            vals: inits.to_vec(),
            next: vec![0.0; inits.len()],
            msgs: Vec::with_capacity(inits.len()),
            fault_msgs: Vec::new(),
            round: 0,
            threads: consensus_pool::default_threads(),
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Sets the worker count for intra-round sharding (1 ⇒ sequential).
    /// Thread count never affects results, only wall-clock time.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the agents-per-chunk granularity of intra-round sharding.
    /// Chunk size never affects results, only load balance.
    #[must_use]
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The number of agents.
    #[must_use]
    pub fn n(&self) -> usize {
        self.vals.len()
    }

    /// The number of completed rounds.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The algorithm being executed.
    #[must_use]
    pub fn algorithm(&self) -> &K {
        &self.alg
    }

    /// The current value vector, borrowed — no allocation.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// The current value spread `Δ(y(t))` — one `max − min` scan (for
    /// scalars the Euclidean and box diameters coincide).
    #[must_use]
    pub fn value_diameter(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.vals {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    }

    /// Executes one round with topology `g`: gather every agent's
    /// broadcast once into the shared slate, then step all agents in
    /// parallel chunks, each reading its in-neighborhood through a
    /// borrowed [`Inbox`] and writing its slot of the double buffer.
    ///
    /// # Panics
    ///
    /// Panics if `g.n() != self.n()`.
    pub fn step<G: RoundTopology>(&mut self, g: &G) {
        assert_eq!(g.n(), self.n(), "graph size must match agent count");
        self.round += 1;
        let round = self.round;
        let ShardedExecution {
            alg,
            vals,
            next,
            msgs,
            threads,
            chunk,
            ..
        } = self;
        msgs.clear();
        msgs.extend(vals.iter().map(|&v| alg.message_scalar(v)));
        let (alg, vals, msgs) = (&*alg, &*vals, &*msgs);
        consensus_pool::for_each_chunk_mut(next, *chunk, *threads, |start, out| {
            for (k, slot) in out.iter_mut().enumerate() {
                let i = start + k;
                let inbox = Inbox::from_senders(g.sender_set(i), msgs);
                *slot = alg.step_scalar(i, vals[i], inbox, round);
            }
        });
        std::mem::swap(&mut self.vals, &mut self.next);
    }

    /// Executes one round with the agents in `byzantine` replaced by
    /// `strategy`: honest agents receive the slate with the liars'
    /// slots overwritten per receiver (two-faced faults), Byzantine
    /// agents' values are frozen. The fault path is sequential — the
    /// strategy is stateful (`&mut`) and must see receivers in agent
    /// order to stay deterministic, exactly like the dense
    /// [`Execution::step_with_faults`](crate::Execution::step_with_faults).
    ///
    /// # Panics
    ///
    /// Panics if `g.n() != self.n()` or every agent is Byzantine.
    pub fn step_with_faults<G: RoundTopology>(
        &mut self,
        g: &G,
        byzantine: &WordSet,
        strategy: &mut dyn ByzantineStrategy,
    ) {
        assert_eq!(g.n(), self.n(), "graph size must match agent count");
        let n = self.n();
        assert!(
            (0..n).any(|i| !byzantine.contains(i)),
            "at least one honest agent required"
        );
        self.round += 1;
        let round = self.round;
        self.msgs.clear();
        let alg = &self.alg;
        self.msgs
            .extend(self.vals.iter().map(|&v| alg.message_scalar(v)));
        // Reused scratch slate: forge only the liars' slots per
        // receiver and restore them afterwards — O(deg) per receiver,
        // no allocation.
        self.fault_msgs.clear();
        self.fault_msgs.extend(self.msgs.iter().copied());
        for i in 0..n {
            if byzantine.contains(i) {
                self.next[i] = self.vals[i];
                continue;
            }
            let senders = g.sender_set(i);
            for j in senders.iter().filter(|&j| byzantine.contains(j)) {
                self.fault_msgs[j] = strategy.forge(round, j, i);
            }
            let inbox = Inbox::from_senders(senders, &self.fault_msgs);
            self.next[i] = self.alg.step_scalar(i, self.vals[i], inbox, round);
            for j in senders.iter().filter(|&j| byzantine.contains(j)) {
                self.fault_msgs[j] = self.msgs[j];
            }
        }
        std::mem::swap(&mut self.vals, &mut self.next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::SplitAttack;
    use crate::Execution;
    use consensus_algorithms::{MeanValue, Midpoint, Point, SelfWeightedAverage};
    use consensus_digraph::{CsrDigraph, Digraph};

    fn inits(n: usize) -> Vec<f64> {
        // Deterministic, non-uniform, sign-mixed values.
        (0..n)
            .map(|i| ((i * 2_654_435_761 % 1_000_003) as f64) / 1_000_003.0 - 0.5)
            .collect()
    }

    #[test]
    fn matches_dense_execution_bitwise_at_small_n() {
        let vals = inits(23);
        let pts: Vec<Point<1>> = vals.iter().map(|&v| Point([v])).collect();
        let g = Digraph::complete(23).make_deaf(4);
        let csr = CsrDigraph::from_dense(&g);
        for threads in [1, 2, 7] {
            let mut dense = Execution::new(Midpoint, &pts);
            let mut shard = ShardedExecution::new(Midpoint, &vals)
                .threads(threads)
                .chunk_size(5);
            let mut shard_csr = ShardedExecution::new(Midpoint, &vals).threads(threads);
            for _ in 0..17 {
                dense.step(&g);
                shard.step(&g);
                shard_csr.step(&csr);
            }
            for i in 0..23 {
                let want = dense.outputs_slice()[i][0].to_bits();
                assert_eq!(want, shard.values()[i].to_bits(), "dense path, agent {i}");
                assert_eq!(want, shard_csr.values()[i].to_bits(), "CSR path, agent {i}");
            }
        }
    }

    #[test]
    fn thread_and_chunk_count_never_change_results() {
        let vals = inits(501);
        let csr = CsrDigraph::ring_lattice(501, 3);
        let mut reference = ShardedExecution::new(MeanValue, &vals).threads(1);
        for _ in 0..9 {
            reference.step(&csr);
        }
        for (threads, chunk) in [(2, 64), (4, 7), (8, 1000)] {
            let mut e = ShardedExecution::new(MeanValue, &vals)
                .threads(threads)
                .chunk_size(chunk);
            for _ in 0..9 {
                e.step(&csr);
            }
            assert_eq!(
                reference.values(),
                e.values(),
                "threads={threads} chunk={chunk}"
            );
        }
    }

    #[test]
    fn runs_well_past_sixty_four_agents() {
        let n = 500;
        let vals = inits(n);
        let csr = CsrDigraph::ring_lattice(n, 2);
        let mut e = ShardedExecution::new(Midpoint, &vals).threads(4);
        let d0 = e.value_diameter();
        for _ in 0..200 {
            e.step(&csr);
        }
        assert_eq!(e.round(), 200);
        assert!(
            e.value_diameter() < d0 * 0.5,
            "spread must contract on a connected lattice"
        );
    }

    #[test]
    fn faulty_step_matches_dense_execution() {
        let vals = inits(9);
        let pts: Vec<Point<1>> = vals.iter().map(|&v| Point([v])).collect();
        let g = Digraph::complete(9);
        let byz_mask: u64 = 0b100000010; // agents 1 and 8
        let mut byz = WordSet::with_capacity(9);
        byz.insert(1);
        byz.insert(8);

        let alg = SelfWeightedAverage::new(0.5);
        let mut dense = Execution::new(alg, &pts);
        let mut shard = ShardedExecution::new(alg, &vals).threads(3);
        let mut s1 = SplitAttack { magnitude: 2.0 };
        let mut s2 = s1;
        for _ in 0..6 {
            dense.step_with_faults(&g, byz_mask, &mut s1);
            shard.step_with_faults(&g, &byz, &mut s2);
        }
        for i in 0..9 {
            assert_eq!(
                dense.outputs_slice()[i][0].to_bits(),
                shard.values()[i].to_bits(),
                "agent {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "graph size")]
    fn size_mismatch_panics() {
        let mut e = ShardedExecution::new(Midpoint, &[0.0, 1.0]);
        e.step(&CsrDigraph::ring_lattice(3, 1));
    }

    #[test]
    #[should_panic(expected = "honest agent")]
    fn all_byzantine_rejected() {
        let mut e = ShardedExecution::new(Midpoint, &[0.0, 1.0]);
        let byz = WordSet::full(2);
        let mut s = |_: u64, _: usize, _: usize| 0.0;
        e.step_with_faults(&Digraph::complete(2), &byz, &mut s);
    }
}
