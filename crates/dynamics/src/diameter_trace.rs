//! Diameter-only recording for large-`n` runs.
//!
//! A full [`Trace`](crate::Trace) clones every round's output vector
//! and communication graph — perfect for the paper's `n ≤ 64`
//! constructions, hopeless at `n = 10⁶` (a 10⁴-round run would hold
//! ~80 GB of outputs). [`DiameterTrace`] records only the per-round
//! value spread `Δ(y(t))` (8 bytes a round), optionally **decimated**
//! (every `stride`-th round) and/or bounded by a **ring buffer** (last
//! `capacity` samples), so memory is constant no matter how long the
//! run.

use crate::trace::{estimate_rates, RateEstimate};

/// A diameter-only execution record: `Δ(y(t))` samples, with optional
/// decimation and ring-buffer retention.
///
/// In its default configuration (stride 1, unbounded) the recorded
/// sequence is **bit-identical** to
/// [`Trace::diameters`](crate::Trace::diameters) of a full trace of
/// the same run, and [`DiameterTrace::rates`] reproduces
/// [`Trace::rates`](crate::Trace::rates) exactly — the decimation
/// property tests pin this down.
#[derive(Debug, Clone)]
pub struct DiameterTrace {
    /// Retained `(round, diameter)` samples, oldest first.
    samples: std::collections::VecDeque<(u64, f64)>,
    stride: u64,
    capacity: Option<usize>,
    round: u64,
    last: f64,
    initial: f64,
}

impl DiameterTrace {
    /// Starts a trace at the given initial spread (round 0, always
    /// sampled), recording every round with unbounded retention.
    #[must_use]
    pub fn new(initial_diameter: f64) -> Self {
        let mut samples = std::collections::VecDeque::new();
        samples.push_back((0, initial_diameter));
        DiameterTrace {
            samples,
            stride: 1,
            capacity: None,
            round: 0,
            last: initial_diameter,
            initial: initial_diameter,
        }
    }

    /// Keeps only every `stride`-th round (round 0 is always kept).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    #[must_use]
    pub fn decimated(mut self, stride: u64) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        self.stride = stride;
        self
    }

    /// Bounds retention to the most recent `capacity` samples (older
    /// samples are evicted ring-buffer style; the running
    /// [`DiameterTrace::initial_diameter`] / [`DiameterTrace::final_diameter`]
    /// scalars are unaffected).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn ring(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        self.capacity = Some(capacity);
        while self.samples.len() > capacity {
            self.samples.pop_front();
        }
        self
    }

    /// Records one completed round's spread.
    pub fn record(&mut self, diameter: f64) {
        self.round += 1;
        self.last = diameter;
        if self.round.is_multiple_of(self.stride) {
            self.samples.push_back((self.round, diameter));
            if let Some(cap) = self.capacity {
                while self.samples.len() > cap {
                    self.samples.pop_front();
                }
            }
        }
    }

    /// The number of recorded rounds `T` (not the number of retained
    /// samples).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The retained `(round, diameter)` samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// The retained diameters, oldest first. With stride 1 and no ring
    /// eviction this equals the full trace's
    /// [`diameters`](crate::Trace::diameters) bit for bit.
    #[must_use]
    pub fn diameters(&self) -> Vec<f64> {
        self.samples.iter().map(|&(_, d)| d).collect()
    }

    /// `Δ(y(0))` (kept even after ring eviction).
    #[must_use]
    pub fn initial_diameter(&self) -> f64 {
        self.initial
    }

    /// `Δ(y(T))` — the spread of the *last recorded* round, sampled or
    /// not.
    #[must_use]
    pub fn final_diameter(&self) -> f64 {
        self.last
    }

    /// Whether the final spread is below `tol`.
    #[must_use]
    pub fn converged(&self, tol: f64) -> bool {
        self.final_diameter() <= tol
    }

    /// Contraction-rate estimates over the retained samples
    /// ([`estimate_rates`]). With stride 1 and no ring eviction this is
    /// bit-identical to [`Trace::rates`](crate::Trace::rates); with
    /// decimation the per-sample ratios span `stride` rounds, so
    /// `t_root` still estimates the *per-sample* contraction.
    #[must_use]
    pub fn rates(&self) -> RateEstimate {
        estimate_rates(&self.diameters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mode_matches_trace_diameters() {
        use consensus_digraph::Digraph;
        let mk = |vals: &[f64]| {
            vals.iter()
                .map(|&v| consensus_algorithms::Point([v]))
                .collect::<Vec<_>>()
        };
        let mut full = crate::Trace::new(mk(&[0.0, 1.0]));
        let mut thin = DiameterTrace::new(full.initial_diameter());
        let mut d = 1.0;
        for _ in 0..20 {
            d *= 0.7;
            full.record(Digraph::complete(2), mk(&[0.0, d]));
            thin.record(full.final_diameter());
        }
        let a = full.diameters();
        let b = thin.diameters();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let (ra, rb) = (full.rates(), thin.rates());
        assert_eq!(ra.t_root.to_bits(), rb.t_root.to_bits());
        assert_eq!(ra.steady_state.to_bits(), rb.steady_state.to_bits());
        assert_eq!(ra.worst_round.to_bits(), rb.worst_round.to_bits());
    }

    #[test]
    fn decimation_keeps_every_kth_round() {
        let mut t = DiameterTrace::new(64.0).decimated(4);
        for r in 1..=16u32 {
            t.record(64.0 / f64::from(r));
        }
        let rounds: Vec<u64> = t.samples().map(|(r, _)| r).collect();
        assert_eq!(rounds, vec![0, 4, 8, 12, 16]);
        assert_eq!(t.rounds(), 16);
        assert_eq!(t.final_diameter(), 4.0);
    }

    #[test]
    fn ring_retains_only_the_tail() {
        let mut t = DiameterTrace::new(1.0).ring(3);
        for r in 1..=10 {
            t.record(f64::from(r));
        }
        let rounds: Vec<u64> = t.samples().map(|(r, _)| r).collect();
        assert_eq!(rounds, vec![8, 9, 10]);
        assert_eq!(t.initial_diameter(), 1.0, "initial survives eviction");
        assert_eq!(t.final_diameter(), 10.0);
        assert_eq!(t.rounds(), 10);
    }

    #[test]
    fn converged_uses_last_round_even_when_decimated() {
        let mut t = DiameterTrace::new(1.0).decimated(5);
        t.record(1e-12); // round 1, not sampled
        assert!(t.converged(1e-9));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = DiameterTrace::new(1.0).decimated(0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = DiameterTrace::new(1.0).ring(0);
    }
}
