//! The unified [`Scenario`] driver: one builder for every experiment
//! shape of the paper.
//!
//! Every lower-bound experiment is *"an algorithm, driven by a pattern
//! source or adversary, possibly with faults, measured by a trace"*.
//! [`Scenario`] expresses exactly that shape:
//!
//! ```text
//! Scenario::new(alg, &inits)
//!     .pattern(p)      // graphs from a PatternSource, or
//!     .graphs(f)       // graphs computed from the live state, or
//!     .adversary(d)    // any Driver (e.g. the valency adversaries)
//!     .metric(m)       // optional: how spread is measured (default: hull diameter)
//!     .decide(eps)     // optional: stop at the first spread ≤ ε
//!     .faults(b, s)    // optional: Byzantine senders (scalar messages)
//!     .run(rounds)     // -> Trace
//! ```
//!
//! The graph choice per round-block is abstracted by the [`Driver`]
//! trait, so pattern sources, state-dependent schedulers (the `N_A`
//! adversaries of `consensus-asyncsim`) and the valency-probing proof
//! adversaries of `consensus-valency` all drive the same loop. The
//! *spread* measure behind `decide`/`until_converged` is likewise
//! abstracted by [`Metric`] (default: [`HullDiameter`], the paper's
//! `Δ`), so multidimensional decision rounds are measured in hull
//! diameter rather than any scalar projection.

use consensus_algorithms::{Algorithm, Point};
use consensus_digraph::{agents_in, AgentSet, Digraph};

use crate::byzantine::ByzantineStrategy;
use crate::metric::{HullDiameter, Metric};
use crate::pattern::PatternSource;
use crate::{Execution, Trace};

/// Chooses the communication graphs of an execution, one block of
/// rounds at a time (blocks have length 1 for ordinary patterns; the
/// Theorem-3 adversary moves in σ-blocks of `n − 2` rounds).
///
/// Implementors see the *current* execution, so choices may depend on
/// live state — probing adversaries fork it, value-aware schedulers
/// sort by it, plain patterns ignore it.
///
/// # Contract for conforming adversaries
///
/// A `Driver` **must**:
///
/// * supply exactly [`Driver::block_len`] graphs per
///   [`Driver::next_block`] call, each on the execution's agent count
///   (`Execution::step` rejects size mismatches; self-loops are
///   enforced by [`Digraph`] itself, matching the paper's model);
/// * be **deterministic**: the emitted sequence may depend only on the
///   driver's construction parameters (including any seed) and on the
///   executions it has observed — never on wall-clock time, thread
///   identity or global state. The sweep harness's bit-identical
///   replay and thread-count invariance rely on this; value-*aware*
///   choices (forking `exec`, as the valency adversaries and the
///   dynamic-network diameter maximiser do) are fine because the
///   execution itself is deterministic;
/// * treat `exec` as read-only: probing forks a [`Execution::clone`],
///   never advances the shared execution (the drive loop applies the
///   returned graphs itself).
///
/// A `Driver` **should** document its *liveness class* — the property
/// of the emitted sequence that makes convergence claims meaningful:
/// rooted every round (the paper's baseline), every T-round window
/// union rooted (T-interval connectivity), rooted from some round on
/// (eventually rooted), and so on. Nothing in the trait enforces
/// liveness: a driver may legally emit disconnected graphs forever,
/// and `decision_round` then reports `None` at the horizon.
///
/// [`Driver::observe`] is called once per block *after* the block's
/// rounds have been applied; use it for bookkeeping (the valency
/// adversary records value spreads there), not for graph choice.
pub trait Driver<A: Algorithm<D>, const D: usize> {
    /// Rounds per block (≥ 1). Stop conditions are checked at block
    /// boundaries, matching the paper's per-(macro-)round granularity.
    fn block_len(&self) -> usize {
        1
    }

    /// Appends the next block's graphs (exactly [`Driver::block_len`]
    /// of them) to `out`.
    fn next_block(&mut self, exec: &Execution<A, D>, out: &mut Vec<Digraph>);

    /// Called once after each block has been applied (bookkeeping hook;
    /// the valency adversary records value spreads here).
    fn observe(&mut self, exec: &Execution<A, D>) {
        let _ = exec;
    }
}

/// A [`Driver`] that replays a [`PatternSource`], one graph per round.
#[derive(Debug, Clone)]
pub struct PatternDriver<P>(pub P);

impl<A: Algorithm<D>, const D: usize, P: PatternSource> Driver<A, D> for PatternDriver<P> {
    fn next_block(&mut self, exec: &Execution<A, D>, out: &mut Vec<Digraph>) {
        out.push(self.0.next_graph(exec.round() + 1));
    }
}

/// A [`Driver`] that computes each round's graph from the live
/// execution — proximity topologies, bounded-confidence influence
/// graphs, value-aware schedulers.
#[derive(Debug, Clone)]
pub struct FnDriver<F>(pub F);

impl<A: Algorithm<D>, const D: usize, F> Driver<A, D> for FnDriver<F>
where
    F: FnMut(&Execution<A, D>) -> Digraph,
{
    fn next_block(&mut self, exec: &Execution<A, D>, out: &mut Vec<Digraph>) {
        out.push((self.0)(exec));
    }
}

/// The builder state before a driver is chosen ([`Scenario::new`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDriver;

/// One configured experiment: an algorithm, a graph [`Driver`], and
/// optional stop conditions — the single entry point subsuming the
/// former `Execution::run`, `Execution::run_until_converged`,
/// `GreedyValencyAdversary::drive` and
/// `measure::minimal_decision_round` APIs.
///
/// # Example
///
/// ```
/// use consensus_algorithms::{Midpoint, Point};
/// use consensus_digraph::Digraph;
/// use consensus_dynamics::{pattern::ConstantPattern, Scenario};
///
/// let inits = [Point([0.0]), Point([1.0]), Point([0.25])];
/// let trace = Scenario::new(Midpoint, &inits)
///     .pattern(ConstantPattern::new(Digraph::complete(3)))
///     .run(1);
/// assert!(trace.final_diameter() < 1e-15);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario<A: Algorithm<D>, Dr, const D: usize, M = HullDiameter> {
    exec: Execution<A, D>,
    driver: Dr,
    stop_below: Option<f64>,
    /// How `decide`/`until_converged` measure the spread.
    metric: M,
    /// Scratch block buffer, reused across blocks.
    blocks: Vec<Digraph>,
}

impl<A: Algorithm<D>, const D: usize> Scenario<A, NoDriver, D> {
    /// Starts a scenario of `alg` from the given initial values, with
    /// the default [`HullDiameter`] spread metric.
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty or has more than 64 agents.
    #[must_use]
    pub fn new(alg: A, inits: &[Point<D>]) -> Self {
        Self::resume(Execution::new(alg, inits))
    }

    /// Continues from an existing (possibly forked or partially run)
    /// execution.
    #[must_use]
    pub fn resume(exec: Execution<A, D>) -> Self {
        Scenario {
            exec,
            driver: NoDriver,
            stop_below: None,
            metric: HullDiameter,
            blocks: Vec::new(),
        }
    }
}

impl<A: Algorithm<D>, const D: usize, M> Scenario<A, NoDriver, D, M> {
    /// Drives the scenario with a [`PatternSource`], one graph per
    /// round.
    #[must_use]
    pub fn pattern<P: PatternSource>(self, pattern: P) -> Scenario<A, PatternDriver<P>, D, M> {
        self.adversary(PatternDriver(pattern))
    }

    /// Drives the scenario with a graph computed from the live
    /// execution each round.
    #[must_use]
    pub fn graphs<F>(self, next: F) -> Scenario<A, FnDriver<F>, D, M>
    where
        F: FnMut(&Execution<A, D>) -> Digraph,
    {
        self.adversary(FnDriver(next))
    }

    /// Drives the scenario with an arbitrary [`Driver`] — typically a
    /// lower-bound adversary (`GreedyValencyAdversary::driver()` in
    /// `consensus-valency`, the `N_A` schedulers in
    /// `consensus-asyncsim`).
    #[must_use]
    pub fn adversary<Dr: Driver<A, D>>(self, driver: Dr) -> Scenario<A, Dr, D, M> {
        Scenario {
            exec: self.exec,
            driver,
            stop_below: self.stop_below,
            metric: self.metric,
            blocks: self.blocks,
        }
    }
}

impl<A: Algorithm<D>, Dr, const D: usize, M> Scenario<A, Dr, D, M> {
    /// Replaces the spread [`Metric`] behind `decide`/
    /// `until_converged`/[`Scenario::decision_round`] (default:
    /// [`HullDiameter`], the paper's `Δ`). Pass
    /// [`BoxDiameter`](crate::metric::BoxDiameter) for per-coordinate
    /// ε-agreement, or any closure `Fn(&[Point<D>]) -> f64`.
    #[must_use]
    pub fn metric<M2: Metric<D>>(self, metric: M2) -> Scenario<A, Dr, D, M2> {
        Scenario {
            exec: self.exec,
            driver: self.driver,
            stop_below: self.stop_below,
            metric,
            blocks: self.blocks,
        }
    }

    /// Stops runs at the first block boundary where the value spread
    /// (per the configured [`Metric`]) is ≤ `eps` — the decision event
    /// of approximate consensus (§9). The resulting trace ends at the
    /// minimal safe decision round; [`Scenario::decision_round`]
    /// returns it directly.
    #[must_use]
    pub fn decide(mut self, eps: f64) -> Self {
        self.stop_below = Some(eps);
        self
    }

    /// Stops runs once the value spread is ≤ `tol` (alias of
    /// [`Scenario::decide`] named for convergence studies).
    #[must_use]
    pub fn until_converged(self, tol: f64) -> Self {
        self.decide(tol)
    }

    /// The underlying execution (current states, round count, outputs).
    #[must_use]
    pub fn execution(&self) -> &Execution<A, D> {
        &self.exec
    }

    /// Consumes the scenario, returning the execution for inspection or
    /// further (differently driven) continuation.
    #[must_use]
    pub fn into_execution(self) -> Execution<A, D> {
        self.exec
    }

    /// The driver — e.g. to read the valency adversary's δ̂ record
    /// after a run.
    #[must_use]
    pub fn driver(&self) -> &Dr {
        &self.driver
    }

    /// Mutable access to the driver.
    #[must_use]
    pub fn driver_mut(&mut self) -> &mut Dr {
        &mut self.driver
    }
}

/// The one driver loop behind every run variant: choose a block, apply
/// it round by round, record, observe — with the stop threshold checked
/// at block boundaries. [`Scenario`] and [`FaultyScenario`] differ only
/// in the `spread`/`step`/`record` closures they plug in.
#[allow(clippy::too_many_arguments)]
fn drive_loop<A: Algorithm<D>, Dr: Driver<A, D>, const D: usize>(
    exec: &mut Execution<A, D>,
    driver: &mut Dr,
    blocks: &mut Vec<Digraph>,
    stop_below: Option<f64>,
    max_rounds: usize,
    spread: &mut dyn FnMut(&Execution<A, D>) -> f64,
    step: &mut dyn FnMut(&mut Execution<A, D>, &Digraph),
    record: &mut dyn FnMut(&Execution<A, D>, Digraph),
) -> usize {
    let mut done = 0;
    while done < max_rounds {
        if let Some(stop) = stop_below {
            if spread(exec) <= stop {
                break;
            }
        }
        blocks.clear();
        driver.next_block(exec, blocks);
        assert!(
            !blocks.is_empty(),
            "driver must supply at least one graph per block"
        );
        for g in blocks.drain(..) {
            step(exec, &g);
            done += 1;
            record(exec, g);
        }
        driver.observe(exec);
    }
    done
}

impl<A: Algorithm<D>, Dr: Driver<A, D>, const D: usize, M: Metric<D>> Scenario<A, Dr, D, M> {
    fn drive(&mut self, max_rounds: usize, mut trace: Option<&mut Trace<D>>) -> usize {
        let metric = &self.metric;
        drive_loop(
            &mut self.exec,
            &mut self.driver,
            &mut self.blocks,
            self.stop_below,
            max_rounds,
            &mut |e| metric.measure(e.outputs_slice()),
            &mut |e, g| e.step(g),
            &mut |e, g| {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(g, e.outputs());
                }
            },
        )
    }

    /// Runs up to `max_rounds` rounds (whole blocks; a final partial
    /// horizon is rounded up to the block length) or until the
    /// configured stop threshold is reached, recording a [`Trace`].
    /// The scenario can be continued afterwards.
    pub fn run(&mut self, max_rounds: usize) -> Trace<D> {
        let mut trace = Trace::new(self.exec.outputs());
        self.drive(max_rounds, Some(&mut trace));
        trace
    }

    /// Like [`Scenario::run`] but records nothing — the allocation-free
    /// variant for rate measurement and probing. Returns the number of
    /// rounds executed.
    pub fn advance(&mut self, max_rounds: usize) -> usize {
        self.drive(max_rounds, None)
    }

    /// Runs until the spread (per the configured [`Metric`]) drops to
    /// ≤ the [`Scenario::decide`] threshold and returns the first
    /// qualifying round (checked at block boundaries, matching the
    /// per-(macro-)round granularity of Theorems 8–11), or `None` if
    /// the `max_rounds` horizon is exhausted first.
    ///
    /// `max_rounds` is a **total horizon counted from round 0**, not a
    /// relative budget: rounds already executed (via [`Scenario::run`]
    /// or [`Scenario::advance`]) are not recounted, so interleaving
    /// `advance(k)` with `decision_round(T)` measures the same decision
    /// round as a single `decision_round(T)` call.
    ///
    /// # Panics
    ///
    /// Panics if no `decide`/`until_converged` threshold is configured.
    pub fn decision_round(&mut self, max_rounds: usize) -> Option<u64> {
        let eps = self
            .stop_below
            .expect("decision_round requires .decide(eps)");
        let executed = usize::try_from(self.exec.round()).unwrap_or(usize::MAX);
        self.advance(max_rounds.saturating_sub(executed));
        (self.metric.measure(self.exec.outputs_slice()) <= eps).then(|| self.exec.round())
    }
}

impl<A: Algorithm<1, Msg = Point<1>>, Dr> Scenario<A, Dr, 1> {
    /// Replaces the outgoing messages of the agents in `byzantine` with
    /// forgeries from `strategy` (two-faced faults included). Only
    /// scalar-message algorithms can be attacked this way; the
    /// resulting [`FaultyScenario`] traces **honest** outputs only and
    /// measures the honest scalar spread — which for `D = 1` *is* the
    /// default [`HullDiameter`] metric. `faults` is therefore only
    /// available on default-metric scenarios: a custom [`Metric`] has
    /// no honest-restricted counterpart here, and silently reverting to
    /// the scalar spread would be worse than rejecting the combination
    /// at compile time.
    ///
    /// # Panics
    ///
    /// Panics if every agent is Byzantine.
    #[must_use]
    pub fn faults<S: ByzantineStrategy>(
        self,
        byzantine: AgentSet,
        strategy: S,
    ) -> FaultyScenario<A, Dr, S> {
        let n = self.exec.n();
        let all: AgentSet = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        assert!(all & !byzantine != 0, "at least one honest agent required");
        FaultyScenario {
            exec: self.exec,
            driver: self.driver,
            byzantine,
            strategy,
            stop_below: self.stop_below,
            blocks: self.blocks,
        }
    }
}

/// A [`Scenario`] with Byzantine value faults: the configured agents'
/// messages are forged per receiver, and the recorded trace contains
/// the **honest** agents' outputs only (matching the correct-agents
/// conditions of fault-tolerant agreement).
#[derive(Debug)]
pub struct FaultyScenario<A: Algorithm<1, Msg = Point<1>>, Dr, S> {
    exec: Execution<A, 1>,
    driver: Dr,
    byzantine: AgentSet,
    strategy: S,
    stop_below: Option<f64>,
    blocks: Vec<Digraph>,
}

impl<A, Dr, S> FaultyScenario<A, Dr, S>
where
    A: Algorithm<1, Msg = Point<1>>,
    Dr: Driver<A, 1>,
    S: ByzantineStrategy,
{
    fn honest_outputs(exec: &Execution<A, 1>, byzantine: AgentSet) -> Vec<Point<1>> {
        exec.outputs_slice()
            .iter()
            .enumerate()
            .filter(|&(i, _)| byzantine & (1u64 << i) == 0)
            .map(|(_, &p)| p)
            .collect()
    }

    /// The honest agents' value spread, computed without allocating
    /// (`Δ` over scalars is `max − min`).
    fn honest_spread(exec: &Execution<A, 1>, byzantine: AgentSet) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (i, p) in exec.outputs_slice().iter().enumerate() {
            if byzantine & (1u64 << i) == 0 {
                lo = lo.min(p[0]);
                hi = hi.max(p[0]);
            }
        }
        (hi - lo).max(0.0)
    }

    fn drive(&mut self, max_rounds: usize, mut trace: Option<&mut Trace<1>>) -> usize {
        let byz = self.byzantine;
        let strategy = &mut self.strategy;
        drive_loop(
            &mut self.exec,
            &mut self.driver,
            &mut self.blocks,
            self.stop_below,
            max_rounds,
            &mut |e| Self::honest_spread(e, byz),
            &mut |e, g| e.step_with_faults(g, byz, &mut *strategy),
            &mut |e, g| {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(g, Self::honest_outputs(e, byz));
                }
            },
        )
    }

    /// Runs up to `max_rounds` further rounds under the driver with
    /// fault injection, recording the honest agents' trace. Like
    /// [`Scenario::run`], the scenario can be continued afterwards —
    /// a later `run`/[`FaultyScenario::advance`] picks up from the
    /// current configuration instead of recounting executed rounds.
    pub fn run(&mut self, max_rounds: usize) -> Trace<1> {
        let mut trace = Trace::new(Self::honest_outputs(&self.exec, self.byzantine));
        self.drive(max_rounds, Some(&mut trace));
        trace
    }

    /// Like [`FaultyScenario::run`] but records nothing; returns the
    /// number of rounds executed (mirrors [`Scenario::advance`]).
    pub fn advance(&mut self, max_rounds: usize) -> usize {
        self.drive(max_rounds, None)
    }

    /// The first round at which the **honest** spread is ≤ the
    /// configured `decide` threshold, or `None` if the `max_rounds`
    /// horizon is exhausted first. As with [`Scenario::decision_round`],
    /// `max_rounds` is a total horizon counted from round 0 — rounds
    /// already executed are not recounted.
    ///
    /// # Panics
    ///
    /// Panics if no `decide`/`until_converged` threshold was configured
    /// before [`Scenario::faults`].
    pub fn decision_round(&mut self, max_rounds: usize) -> Option<u64> {
        let eps = self
            .stop_below
            .expect("decision_round requires .decide(eps)");
        let executed = usize::try_from(self.exec.round()).unwrap_or(usize::MAX);
        self.advance(max_rounds.saturating_sub(executed));
        (Self::honest_spread(&self.exec, self.byzantine) <= eps).then(|| self.exec.round())
    }

    /// The underlying execution (all agents, liars included).
    #[must_use]
    pub fn execution(&self) -> &Execution<A, 1> {
        &self.exec
    }

    /// The honest agents, ascending (their outputs' order in the
    /// trace).
    pub fn honest_agents(&self) -> impl Iterator<Item = usize> + '_ {
        let n = self.exec.n();
        let all: AgentSet = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        agents_in(all & !self.byzantine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::SplitAttack;
    use crate::pattern::ConstantPattern;
    use consensus_algorithms::{MeanValue, Midpoint, TrimmedMean};
    use consensus_digraph::families;

    fn pts(vals: &[f64]) -> Vec<Point<1>> {
        vals.iter().map(|&v| Point([v])).collect()
    }

    #[test]
    fn pattern_run_records_every_round() {
        let trace = Scenario::new(Midpoint, &pts(&[0.0, 1.0, 0.4]))
            .pattern(ConstantPattern::new(Digraph::complete(3)))
            .run(5);
        assert_eq!(trace.rounds(), 5);
        assert!(trace.final_diameter() < 1e-12);
    }

    #[test]
    fn decide_stops_at_first_sub_eps_round() {
        // Midpoint under the deaf graph halves per round: Δ/ε = 8 needs
        // exactly 3 rounds.
        let f0 = Digraph::complete(3).make_deaf(0);
        let mut sc = Scenario::new(Midpoint, &pts(&[0.0, 1.0, 1.0]))
            .pattern(ConstantPattern::new(f0))
            .decide(1.0 / 8.0);
        assert_eq!(sc.decision_round(64), Some(3));
    }

    #[test]
    fn decision_round_zero_when_already_agreed() {
        let mut sc = Scenario::new(Midpoint, &pts(&[0.4, 0.4]))
            .pattern(ConstantPattern::new(Digraph::complete(2)))
            .decide(1e-3);
        assert_eq!(sc.decision_round(8), Some(0));
    }

    #[test]
    fn decision_round_none_when_unreachable() {
        let f0 = Digraph::complete(2).make_deaf(0);
        let mut sc = Scenario::new(Midpoint, &pts(&[0.0, 1.0]))
            .pattern(ConstantPattern::new(f0))
            .decide(1e-12);
        assert_eq!(sc.decision_round(4), None);
    }

    #[test]
    fn graphs_driver_sees_live_state() {
        // Make the lowest-valued agent deaf each round: state-dependent
        // topology.
        let mut sc = Scenario::new(MeanValue, &pts(&[0.0, 1.0, 0.5])).graphs(|e| {
            let outs = e.outputs_slice();
            let lowest = (0..e.n())
                .min_by(|&a, &b| outs[a][0].total_cmp(&outs[b][0]))
                .expect("non-empty");
            Digraph::complete(3).make_deaf(lowest)
        });
        let trace = sc.run(30);
        assert!(trace.validity_holds(1e-9));
        assert!(trace.final_diameter() < trace.initial_diameter());
    }

    #[test]
    fn advance_matches_run_without_recording() {
        let mut a = Scenario::new(Midpoint, &pts(&[0.0, 1.0, 0.3]))
            .pattern(ConstantPattern::new(families::cycle(3)));
        let mut b = Scenario::new(Midpoint, &pts(&[0.0, 1.0, 0.3]))
            .pattern(ConstantPattern::new(families::cycle(3)));
        let trace = a.run(7);
        assert_eq!(b.advance(7), 7);
        assert_eq!(a.execution().outputs_slice(), b.execution().outputs_slice());
        assert_eq!(trace.rounds(), 7);
    }

    #[test]
    fn resume_continues_forked_execution() {
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        e.step(&Digraph::complete(2));
        let trace = Scenario::resume(e.clone())
            .pattern(ConstantPattern::new(Digraph::complete(2)))
            .run(3);
        assert_eq!(trace.rounds(), 3);
        assert_eq!(trace.outputs_at(0), e.outputs_slice());
    }

    #[test]
    fn faulty_scenario_traces_honest_agents_only() {
        let n = 7;
        let byz: AgentSet = 0b1100000;
        let inits: Vec<Point<1>> = (0..n).map(|i| Point([i as f64 / (n - 1) as f64])).collect();
        let mut sc = Scenario::new(TrimmedMean::new(2), &inits)
            .pattern(ConstantPattern::new(Digraph::complete(n)))
            .faults(byz, SplitAttack { magnitude: 1e6 });
        let trace = sc.run(40);
        assert_eq!(trace.outputs_at(0).len(), 5, "5 honest agents");
        assert!(trace.final_diameter() < 1e-6, "honest agents agree");
        assert!(trace.validity_holds(1e-9), "honest hull respected");
    }

    #[test]
    fn decision_round_does_not_recount_after_advance() {
        // Midpoint under deaf(K_3) halves per round: Δ/ε = 8 decides at
        // round 3. Splitting the drive as advance(2) + decision_round(64)
        // must agree with the one-shot measurement.
        let f0 = Digraph::complete(3).make_deaf(0);
        let build = || {
            Scenario::new(Midpoint, &pts(&[0.0, 1.0, 1.0]))
                .pattern(ConstantPattern::new(f0.clone()))
                .decide(1.0 / 8.0)
        };
        let mut oneshot = build();
        assert_eq!(oneshot.decision_round(64), Some(3));

        let mut split = build();
        assert_eq!(split.advance(2), 2);
        assert_eq!(split.decision_round(64), Some(3), "no recounting");
        assert_eq!(split.execution().round(), 3, "stopped at the decision");

        // The horizon is absolute: after advance(2), a budget of 2 is
        // already exhausted and may not buy 2 extra rounds.
        let mut exhausted = build();
        exhausted.advance(2);
        assert_eq!(exhausted.decision_round(2), None);
        assert_eq!(exhausted.execution().round(), 2, "no extra rounds ran");
    }

    #[test]
    fn faulty_scenario_advance_then_run_is_resumable() {
        let n = 7;
        let byz: AgentSet = 0b1100000;
        let inits: Vec<Point<1>> = (0..n).map(|i| Point([i as f64 / (n - 1) as f64])).collect();
        let build = || {
            Scenario::new(TrimmedMean::new(2), &inits)
                .pattern(ConstantPattern::new(Digraph::complete(n)))
                .faults(byz, SplitAttack { magnitude: 1e6 })
        };
        let mut oneshot = build();
        let full = oneshot.run(10);

        let mut split = build();
        assert_eq!(split.advance(4), 4);
        let tail = split.run(6);
        assert_eq!(tail.rounds(), 6, "run continues, not restarts");
        assert_eq!(
            tail.outputs_at(0),
            full.outputs_at(4),
            "resumed trace starts at the advanced configuration"
        );
        assert_eq!(tail.outputs_at(6), full.outputs_at(10));
    }

    #[test]
    fn faulty_decision_round_not_recounted() {
        let n = 5;
        let byz: AgentSet = 0b10000;
        let inits: Vec<Point<1>> = (0..n).map(|i| Point([i as f64 / (n - 1) as f64])).collect();
        let build = || {
            Scenario::new(TrimmedMean::new(1), &inits)
                .pattern(ConstantPattern::new(Digraph::complete(n)))
                .decide(1e-3)
                .faults(byz, SplitAttack { magnitude: 10.0 })
        };
        let mut oneshot = build();
        let t = oneshot.decision_round(64).expect("trimmed mean converges");
        let mut split = build();
        split.advance(1);
        assert_eq!(split.decision_round(64), Some(t));
    }

    #[test]
    fn metric_choice_changes_the_decision_round() {
        use crate::metric::{BoxDiameter, HullDiameter};
        use consensus_algorithms::MidpointCoordinatewise;
        // Deaf K_3 in R^2, deaf agent pinned at the origin: each round
        // the hearers move to the box centre, so the box diameter halves
        // exactly while the hull (Euclidean) diameter is √2× larger on
        // the diagonal — box-diameter ε-agreement is reached one round
        // earlier at ε chosen between Δ∞ and Δ₂ after t rounds.
        let inits = [Point([0.0, 0.0]), Point([1.0, 1.0]), Point([1.0, 0.25])];
        let f0 = Digraph::complete(3).make_deaf(0);
        let eps = 1.25 / 8.0; // between 1/8 (box after 3) and √2/8 (hull)
        let mut hull = Scenario::new(MidpointCoordinatewise, &inits)
            .pattern(ConstantPattern::new(f0.clone()))
            .metric(HullDiameter)
            .decide(eps);
        let mut boxm = Scenario::new(MidpointCoordinatewise, &inits)
            .pattern(ConstantPattern::new(f0))
            .metric(BoxDiameter)
            .decide(eps);
        let t_hull = hull.decision_round(64).expect("converges");
        let t_box = boxm.decision_round(64).expect("converges");
        assert!(
            t_box < t_hull,
            "box decides at {t_box}, hull needs {t_hull}"
        );
    }

    #[test]
    fn default_metric_is_hull_diameter() {
        // For D = 1 the default metric is the scalar spread: identical
        // decision rounds whether the metric is spelled out or not.
        let build = || {
            Scenario::new(Midpoint, &pts(&[0.0, 1.0, 1.0]))
                .pattern(ConstantPattern::new(Digraph::complete(3).make_deaf(0)))
        };
        let implicit = build().decide(1.0 / 8.0).decision_round(64);
        let explicit = build()
            .metric(crate::metric::HullDiameter)
            .decide(1.0 / 8.0)
            .decision_round(64);
        assert_eq!(implicit, Some(3));
        assert_eq!(implicit, explicit);
    }

    #[test]
    fn closure_metrics_drive_decisions() {
        // Stop when everyone is within ε of agent 0 — a custom metric.
        let leader = |outs: &[Point<1>]| {
            outs.iter()
                .map(|p| (p[0] - outs[0][0]).abs())
                .fold(0.0, f64::max)
        };
        let mut sc = Scenario::new(Midpoint, &pts(&[0.0, 1.0, 0.5]))
            .pattern(ConstantPattern::new(Digraph::complete(3)))
            .metric(leader)
            .decide(1e-9);
        assert_eq!(sc.decision_round(16), Some(1), "clique agrees in 1 round");
    }

    #[test]
    #[should_panic(expected = "honest")]
    fn all_byzantine_rejected() {
        let _ = Scenario::new(Midpoint, &pts(&[0.0, 1.0]))
            .pattern(ConstantPattern::new(Digraph::complete(2)))
            .faults(0b11, SplitAttack { magnitude: 1.0 });
    }
}
