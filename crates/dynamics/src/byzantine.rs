//! Byzantine value-fault strategies for scalar message algorithms.
//!
//! The paper's lineage starts with Byzantine approximate agreement
//! (Dolev et al. \[14\]); its bounds concern benign dynamic faults, but
//! the *algorithms* it proves optimal are often deployed where some
//! senders lie. A [`ByzantineStrategy`] forges the messages of a set of
//! Byzantine agents — *two-faced* behaviour included (different lies to
//! different receivers). Honest agents cannot distinguish lies from
//! values, which is exactly why the cautious (trimmed) rules of
//! \[14\]/\[17\] exist.
//!
//! Fault injection is part of the [`crate::Scenario`] builder:
//!
//! ```
//! use consensus_algorithms::{Point, TrimmedMean};
//! use consensus_digraph::Digraph;
//! use consensus_dynamics::byzantine::SplitAttack;
//! use consensus_dynamics::{pattern::ConstantPattern, Scenario};
//!
//! let inits: Vec<Point<1>> = (0..7).map(|i| Point([i as f64 / 6.0])).collect();
//! let trace = Scenario::new(TrimmedMean::new(2), &inits)
//!     .pattern(ConstantPattern::new(Digraph::complete(7)))
//!     .faults(0b1100000, SplitAttack { magnitude: 1e6 })
//!     .run(40);
//! assert!(trace.final_diameter() < 1e-6, "honest agents agree");
//! assert!(trace.validity_holds(1e-9), "…inside the honest hull");
//! ```
//!
//! The integration suite shows [`consensus_algorithms::TrimmedMean`]
//! shrugging off `f` liars while plain averaging is dragged out of the
//! honest hull.

/// A Byzantine message strategy: the value agent `byz` sends to
/// `receiver` in `round` (may differ per receiver — two-faced faults).
pub trait ByzantineStrategy {
    /// The forged scalar message.
    fn forge(&mut self, round: u64, byz: usize, receiver: usize) -> f64;
}

impl<F: FnMut(u64, usize, usize) -> f64> ByzantineStrategy for F {
    fn forge(&mut self, round: u64, byz: usize, receiver: usize) -> f64 {
        self(round, byz, receiver)
    }
}

/// A two-faced strategy pushing each receiver toward an extreme based on
/// the receiver's parity — the classic split attack.
#[derive(Debug, Clone, Copy)]
pub struct SplitAttack {
    /// Magnitude of the forged values (`±magnitude`).
    pub magnitude: f64,
}

impl ByzantineStrategy for SplitAttack {
    fn forge(&mut self, _round: u64, _byz: usize, receiver: usize) -> f64 {
        if receiver.is_multiple_of(2) {
            self.magnitude
        } else {
            -self.magnitude
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ConstantPattern;
    use crate::{Scenario, Trace};
    use consensus_algorithms::{Algorithm, MeanValue, Midpoint, Point, TrimmedMean};
    use consensus_digraph::{AgentSet, Digraph};

    fn honest_inits(n: usize) -> Vec<Point<1>> {
        (0..n).map(|i| Point([i as f64 / (n - 1) as f64])).collect()
    }

    fn attack<A, S>(alg: A, n: usize, byz: AgentSet, strategy: S, rounds: usize) -> Trace<1>
    where
        A: Algorithm<1, Msg = Point<1>>,
        S: ByzantineStrategy,
    {
        Scenario::new(alg, &honest_inits(n))
            .pattern(ConstantPattern::new(Digraph::complete(n)))
            .faults(byz, strategy)
            .run(rounds)
    }

    #[test]
    fn trimmed_mean_survives_split_attack() {
        // n = 7, two Byzantine agents, clique: trim = 2 discards the
        // extremes, honest agents converge inside their initial hull.
        let trace = attack(
            TrimmedMean::new(2),
            7,
            0b1100000,
            SplitAttack { magnitude: 1e6 },
            40,
        );
        assert!(trace.final_diameter() < 1e-6, "honest agents agree");
        assert!(
            trace.validity_holds(1e-9),
            "honest outputs never left the honest hull"
        );
    }

    #[test]
    fn plain_mean_is_dragged_away() {
        let trace = attack(MeanValue, 7, 0b1100000, SplitAttack { magnitude: 1e6 }, 3);
        assert!(
            !trace.validity_holds(1.0),
            "unprotected averaging leaves the honest hull immediately"
        );
    }

    #[test]
    fn midpoint_is_also_vulnerable() {
        // Midpoint uses the received extremes, so a single liar owns it.
        let trace = attack(Midpoint, 5, 0b10000, SplitAttack { magnitude: 100.0 }, 2);
        assert!(!trace.validity_holds(1.0));
    }

    #[test]
    fn insufficient_trim_fails_sufficient_trim_succeeds() {
        let n = 9;
        let byz: AgentSet = 0b110000000; // agents 7, 8 lie
        for (trim, ok) in [(1usize, false), (2, true)] {
            let trace = attack(
                TrimmedMean::new(trim),
                n,
                byz,
                SplitAttack { magnitude: 1e3 },
                30,
            );
            assert_eq!(
                trace.validity_holds(1e-6),
                ok,
                "trim = {trim} should {}",
                if ok { "tolerate 2 liars" } else { "fail" }
            );
        }
    }

    #[test]
    fn no_byzantine_agents_is_plain_execution() {
        let trace = attack(Midpoint, 4, 0, SplitAttack { magnitude: 1e9 }, 5);
        assert!(trace.final_diameter() < 1e-12);
        assert!(trace.validity_holds(1e-12));
    }

    #[test]
    fn closure_strategies_forge_per_receiver() {
        // A custom two-faced closure: each receiver is told its own id.
        let trace = attack(
            Midpoint,
            4,
            0b1000,
            |_round: u64, _byz: usize, receiver: usize| receiver as f64 * 100.0,
            1,
        );
        assert!(!trace.validity_holds(1.0), "lies differ per receiver");
    }
}
