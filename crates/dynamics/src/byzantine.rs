//! Byzantine value-fault injection for scalar message algorithms.
//!
//! The paper's lineage starts with Byzantine approximate agreement
//! (Dolev et al. [14]); its bounds concern benign dynamic faults, but
//! the *algorithms* it proves optimal are often deployed where some
//! senders lie. This harness runs a scalar-message algorithm with a set
//! of **Byzantine agents** whose outgoing messages are replaced by an
//! adversarial closure — *two-faced* behaviour included (different lies
//! to different receivers). Honest agents cannot distinguish lies from
//! values, which is exactly why the cautious (trimmed) rules of
//! [14]/[17] exist; the tests and the integration suite show
//! [`consensus_algorithms::TrimmedMean`] shrugging off `f` liars while
//! plain averaging is dragged out of the honest hull.

use consensus_algorithms::{Algorithm, Point};
use consensus_digraph::{AgentSet, Digraph};

use crate::pattern::PatternSource;
use crate::Trace;

/// A Byzantine message strategy: the value agent `byz` sends to
/// `receiver` in `round` (may differ per receiver — two-faced faults).
pub trait ByzantineStrategy {
    /// The forged scalar message.
    fn forge(&mut self, round: u64, byz: usize, receiver: usize) -> f64;
}

impl<F: FnMut(u64, usize, usize) -> f64> ByzantineStrategy for F {
    fn forge(&mut self, round: u64, byz: usize, receiver: usize) -> f64 {
        self(round, byz, receiver)
    }
}

/// A two-faced strategy pushing each receiver toward an extreme based on
/// the receiver's parity — the classic split attack.
#[derive(Debug, Clone, Copy)]
pub struct SplitAttack {
    /// Magnitude of the forged values (`±magnitude`).
    pub magnitude: f64,
}

impl ByzantineStrategy for SplitAttack {
    fn forge(&mut self, _round: u64, _byz: usize, receiver: usize) -> f64 {
        if receiver.is_multiple_of(2) {
            self.magnitude
        } else {
            -self.magnitude
        }
    }
}

/// Runs `alg` for `rounds` rounds under `pattern`, with the agents in
/// `byzantine` replaced by `strategy`. Returns the trace of the
/// **honest** agents' outputs (Byzantine outputs are excluded from the
/// recorded configuration, matching the correct-agents-only conditions
/// of fault-tolerant agreement).
///
/// Only scalar-message algorithms (`Msg = Point<1>`) can be attacked
/// this way; richer message types would need protocol-specific forgery.
///
/// # Panics
///
/// Panics if every agent is Byzantine or `inits.len()` exceeds 64.
pub fn run_with_byzantine<A, P, S>(
    alg: A,
    inits: &[Point<1>],
    pattern: &mut P,
    byzantine: AgentSet,
    strategy: &mut S,
    rounds: usize,
) -> Trace<1>
where
    A: Algorithm<1, Msg = Point<1>>,
    P: PatternSource,
    S: ByzantineStrategy,
{
    let n = inits.len();
    assert!((1..=64).contains(&n), "need 1..=64 agents");
    let honest: Vec<usize> = (0..n).filter(|&i| byzantine & (1 << i) == 0).collect();
    assert!(!honest.is_empty(), "at least one honest agent required");

    let mut states: Vec<A::State> = inits
        .iter()
        .enumerate()
        .map(|(i, &y0)| alg.init(i, y0))
        .collect();

    let honest_outputs = |states: &[A::State]| -> Vec<Point<1>> {
        honest.iter().map(|&i| alg.output(&states[i])).collect()
    };

    let mut trace = Trace::new(honest_outputs(&states));
    for r in 1..=rounds as u64 {
        let g: Digraph = pattern.next_graph(r);
        assert_eq!(g.n(), n, "graph size must match agent count");
        let msgs: Vec<Point<1>> = states.iter().map(|s| alg.message(s)).collect();
        let mut next = states.clone();
        for &i in &honest {
            let inbox: Vec<(usize, Point<1>)> = g
                .in_neighbors(i)
                .map(|j| {
                    let v = if byzantine & (1 << j) != 0 {
                        Point([strategy.forge(r, j, i)])
                    } else {
                        msgs[j]
                    };
                    (j, v)
                })
                .collect();
            alg.step(i, &mut next[i], &inbox, r);
        }
        states = next;
        trace.record(g, honest_outputs(&states));
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ConstantPattern;
    use consensus_algorithms::{MeanValue, Midpoint, TrimmedMean};

    fn honest_inits(n: usize) -> Vec<Point<1>> {
        (0..n).map(|i| Point([i as f64 / (n - 1) as f64])).collect()
    }

    #[test]
    fn trimmed_mean_survives_split_attack() {
        // n = 7, two Byzantine agents, clique: trim = 2 discards the
        // extremes, honest agents converge inside their initial hull.
        let n = 7;
        let byz: AgentSet = 0b1100000;
        let mut strat = SplitAttack { magnitude: 1e6 };
        let mut pat = ConstantPattern::new(Digraph::complete(n));
        let trace = run_with_byzantine(
            TrimmedMean::new(2),
            &honest_inits(n),
            &mut pat,
            byz,
            &mut strat,
            40,
        );
        assert!(trace.final_diameter() < 1e-6, "honest agents agree");
        assert!(
            trace.validity_holds(1e-9),
            "honest outputs never left the honest hull"
        );
    }

    #[test]
    fn plain_mean_is_dragged_away() {
        let n = 7;
        let byz: AgentSet = 0b1100000;
        let mut strat = SplitAttack { magnitude: 1e6 };
        let mut pat = ConstantPattern::new(Digraph::complete(n));
        let trace = run_with_byzantine(MeanValue, &honest_inits(n), &mut pat, byz, &mut strat, 3);
        assert!(
            !trace.validity_holds(1.0),
            "unprotected averaging leaves the honest hull immediately"
        );
    }

    #[test]
    fn midpoint_is_also_vulnerable() {
        // Midpoint uses the received extremes, so a single liar owns it.
        let n = 5;
        let byz: AgentSet = 0b10000;
        let mut strat = SplitAttack { magnitude: 100.0 };
        let mut pat = ConstantPattern::new(Digraph::complete(n));
        let trace = run_with_byzantine(Midpoint, &honest_inits(n), &mut pat, byz, &mut strat, 2);
        assert!(!trace.validity_holds(1.0));
    }

    #[test]
    fn insufficient_trim_fails_sufficient_trim_succeeds() {
        let n = 9;
        let byz: AgentSet = 0b110000000; // agents 7, 8 lie
        for (trim, ok) in [(1usize, false), (2, true)] {
            let mut strat = SplitAttack { magnitude: 1e3 };
            let mut pat = ConstantPattern::new(Digraph::complete(n));
            let trace = run_with_byzantine(
                TrimmedMean::new(trim),
                &honest_inits(n),
                &mut pat,
                byz,
                &mut strat,
                30,
            );
            assert_eq!(
                trace.validity_holds(1e-6),
                ok,
                "trim = {trim} should {}",
                if ok { "tolerate 2 liars" } else { "fail" }
            );
        }
    }

    #[test]
    fn no_byzantine_agents_is_plain_execution() {
        let n = 4;
        let mut strat = SplitAttack { magnitude: 1e9 };
        let mut pat = ConstantPattern::new(Digraph::complete(n));
        let trace = run_with_byzantine(Midpoint, &honest_inits(n), &mut pat, 0, &mut strat, 5);
        assert!(trace.final_diameter() < 1e-12);
        assert!(trace.validity_holds(1e-12));
    }

    #[test]
    #[should_panic(expected = "honest")]
    fn all_byzantine_rejected() {
        let mut strat = SplitAttack { magnitude: 1.0 };
        let mut pat = ConstantPattern::new(Digraph::complete(2));
        let _ = run_with_byzantine(Midpoint, &honest_inits(2), &mut pat, 0b11, &mut strat, 1);
    }
}
