//! Recorded executions and contraction-rate estimation.
//!
//! The paper defines the contraction rate of an algorithm as
//! `sup_E limsup_{t→∞} (δ(C_t))^{1/t}` (§3), where `δ` is the valency
//! diameter. Along the worst-case executions constructed by the proofs,
//! the *value* spread `Δ(y(t))` contracts geometrically at the same rate,
//! so a [`Trace`] records outputs per round and offers several rate
//! estimators; the valency-diameter variant lives in `consensus-valency`.

use consensus_algorithms::float::det_max;
use consensus_algorithms::{diameter, HullPlanes, Point};
use consensus_digraph::Digraph;

/// A recorded execution: the output vectors of rounds `0..=T` and the
/// communication graphs of rounds `1..=T`.
#[derive(Debug, Clone)]
pub struct Trace<const D: usize> {
    outputs: Vec<Vec<Point<D>>>,
    graphs: Vec<Digraph>,
}

/// Contraction-rate estimates extracted from a trace; see
/// [`Trace::rates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEstimate {
    /// `(Δ(y(T)) / Δ(y(0)))^{1/T}` — the direct analogue of the paper's
    /// `t`-th-root definition over the recorded horizon.
    pub t_root: f64,
    /// The geometric mean of per-round ratios over the second half of the
    /// trace (discards transients; robust for amortized algorithms).
    pub steady_state: f64,
    /// The worst (largest) single-round ratio observed.
    pub worst_round: f64,
}

impl<const D: usize> Trace<D> {
    /// Starts a trace at the given initial configuration (round 0).
    #[must_use]
    pub fn new(initial_outputs: Vec<Point<D>>) -> Self {
        Trace {
            outputs: vec![initial_outputs],
            graphs: Vec::new(),
        }
    }

    /// Records one completed round.
    pub fn record(&mut self, graph: Digraph, outputs: Vec<Point<D>>) {
        self.graphs.push(graph);
        self.outputs.push(outputs);
    }

    /// The number of recorded rounds `T`.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.graphs.len()
    }

    /// The output vector after round `t` (`t = 0` is the initial
    /// configuration).
    ///
    /// # Panics
    ///
    /// Panics if `t > rounds()`.
    #[must_use]
    pub fn outputs_at(&self, t: usize) -> &[Point<D>] {
        &self.outputs[t]
    }

    /// The communication graph of round `t ∈ 1..=rounds()`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn graph_at(&self, t: usize) -> &Digraph {
        assert!(t >= 1, "rounds are 1-based");
        &self.graphs[t - 1]
    }

    /// The value spread `Δ(y(t))` for every `t ∈ 0..=rounds()`.
    #[must_use]
    pub fn diameters(&self) -> Vec<f64> {
        self.outputs.iter().map(|o| diameter(o)).collect()
    }

    /// `Δ(y(0))`.
    #[must_use]
    pub fn initial_diameter(&self) -> f64 {
        diameter(&self.outputs[0])
    }

    /// `Δ(y(T))`.
    #[must_use]
    pub fn final_diameter(&self) -> f64 {
        diameter(self.outputs.last().expect("trace holds round 0"))
    }

    /// Whether the final spread is below `tol`.
    #[must_use]
    pub fn converged(&self, tol: f64) -> bool {
        self.final_diameter() <= tol
    }

    /// Per-round contraction ratios `Δ(y(t)) / Δ(y(t−1))` (rounds whose
    /// predecessor spread is ≤ `floor` are skipped to avoid 0/0).
    #[must_use]
    pub fn round_ratios(&self, floor: f64) -> Vec<f64> {
        let d = self.diameters();
        d.windows(2)
            .filter(|w| w[0] > floor)
            .map(|w| w[1] / w[0])
            .collect()
    }

    /// Contraction-rate estimates over the recorded horizon.
    ///
    /// Returns ratios of 0 when the initial spread is already ~0. When
    /// the spread collapses to (floating-point) zero mid-trace, the
    /// estimators are computed over the prefix before the collapse —
    /// geometric-rate estimation is meaningless past exact agreement.
    #[must_use]
    pub fn rates(&self) -> RateEstimate {
        estimate_rates(&self.diameters())
    }

    /// **Validity check** (paper §2.1): every recorded output lies in the
    /// convex hull of the initial values. Exact for `D ∈ {1, 2, 3}`
    /// (cross-product half-plane / supporting-plane tests, see
    /// [`consensus_algorithms::in_convex_hull`]); a bounding-box
    /// relaxation for `D ≥ 4`. Only
    /// meaningful for convex combination algorithms — and strict enough
    /// to catch the coordinate-wise box centre leaving the hull at
    /// `d = 3` (arXiv:1805.04923), which the old box check could not.
    /// The supporting-plane structure of the initial hull is computed
    /// **once** ([`HullPlanes`]) and queried per point — bit-identical
    /// to calling [`in_convex_hull`](consensus_algorithms::in_convex_hull)
    /// per point, but `O(planes)` instead
    /// of `O(planes · n)` per query.
    #[must_use]
    pub fn validity_holds(&self, tol: f64) -> bool {
        let hull = HullPlanes::new(&self.outputs[0]);
        self.outputs
            .iter()
            .flat_map(|round| round.iter())
            .all(|p| hull.contains(p, tol))
    }

    /// **Agreement+Convergence check**: the spread is ≤ `tol` at the end
    /// and never increased by more than `slack` relative to its running
    /// minimum (a cheap guard against oscillating "convergence").
    #[must_use]
    pub fn convergence_is_monotoneish(&self, tol: f64, slack: f64) -> bool {
        let mut running_min = f64::INFINITY;
        for d in self.diameters() {
            if d > running_min * (1.0 + slack) && d > tol {
                return false;
            }
            running_min = running_min.min(d);
        }
        self.final_diameter() <= tol
    }
}

/// Contraction-rate estimates from a per-round diameter sequence
/// (`diameters[t] = Δ(y(t))`, `t = 0` the initial configuration).
///
/// This is the estimator behind [`Trace::rates`], exposed standalone so
/// [`crate::DiameterTrace`] (which records only diameters, not outputs)
/// produces bit-identical estimates to a full trace of the same run.
/// Returns all-zero estimates for an empty or all-degenerate sequence.
#[must_use]
pub fn estimate_rates(diameters: &[f64]) -> RateEstimate {
    const FLOOR: f64 = 1e-280;
    let d = diameters;
    if d.is_empty() {
        return RateEstimate {
            t_root: 0.0,
            steady_state: 0.0,
            worst_round: 0.0,
        };
    }
    // Longest prefix with strictly positive spreads.
    let last = d.iter().rposition(|&x| x > FLOOR).unwrap_or(0);
    let t_root = if last == 0 || d[0] <= FLOOR {
        0.0
    } else {
        (d[last] / d[0]).powf(1.0 / last as f64)
    };
    let ratios: Vec<f64> = d[..=last]
        .windows(2)
        .filter(|w| w[0] > FLOOR && w[1] > FLOOR)
        .map(|w| w[1] / w[0])
        .collect();
    let half = ratios.len() / 2;
    let tail = &ratios[half..];
    let steady_state = if tail.is_empty() {
        t_root
    } else {
        let log_sum: f64 = tail.iter().map(|r| r.max(FLOOR).ln()).sum();
        (log_sum / tail.len() as f64).exp()
    };
    let worst_round = d
        .windows(2)
        .filter(|w| w[0] > FLOOR)
        .map(|w| w[1] / w[0])
        .fold(0.0, det_max);
    RateEstimate {
        t_root,
        steady_state,
        worst_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(vals: &[f64]) -> Vec<Point<1>> {
        vals.iter().map(|&v| Point([v])).collect()
    }

    fn geometric_trace(rate: f64, rounds: usize) -> Trace<1> {
        let mut t = Trace::new(mk(&[0.0, 1.0]));
        let mut d = 1.0;
        for _ in 0..rounds {
            d *= rate;
            t.record(Digraph::complete(2), mk(&[0.0, d]));
        }
        t
    }

    #[test]
    fn t_root_recovers_geometric_rate() {
        for rate in [0.5, 1.0 / 3.0, 0.9] {
            let t = geometric_trace(rate, 30);
            let r = t.rates();
            assert!((r.t_root - rate).abs() < 1e-9, "t_root for {rate}");
            assert!((r.steady_state - rate).abs() < 1e-9);
            assert!((r.worst_round - rate).abs() < 1e-9);
        }
    }

    #[test]
    fn rates_of_flat_trace_are_zero() {
        let mut t = Trace::new(mk(&[0.5, 0.5]));
        t.record(Digraph::complete(2), mk(&[0.5, 0.5]));
        let r = t.rates();
        assert_eq!(r.t_root, 0.0);
    }

    #[test]
    fn diameters_and_accessors() {
        let t = geometric_trace(0.5, 3);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.diameters(), vec![1.0, 0.5, 0.25, 0.125]);
        assert_eq!(t.outputs_at(0).len(), 2);
        assert!(t.graph_at(1).is_complete());
        assert!((t.initial_diameter() - 1.0).abs() < 1e-15);
        assert!((t.final_diameter() - 0.125).abs() < 1e-15);
    }

    #[test]
    fn validity_detects_escape() {
        let mut t = Trace::new(mk(&[0.0, 1.0]));
        t.record(Digraph::complete(2), mk(&[0.2, 0.8]));
        assert!(t.validity_holds(0.0));
        t.record(Digraph::complete(2), mk(&[-0.5, 0.8]));
        assert!(!t.validity_holds(1e-9));
    }

    #[test]
    fn monotoneish_convergence() {
        let good = geometric_trace(0.5, 20);
        assert!(good.convergence_is_monotoneish(1e-5, 0.01));
        // A spread that re-expands fails the check.
        let mut bad = Trace::new(mk(&[0.0, 1.0]));
        bad.record(Digraph::complete(2), mk(&[0.0, 0.1]));
        bad.record(Digraph::complete(2), mk(&[0.0, 0.9]));
        bad.record(Digraph::complete(2), mk(&[0.0, 0.0]));
        assert!(!bad.convergence_is_monotoneish(1e-5, 0.01));
    }

    #[test]
    fn round_ratios_skip_degenerate() {
        let mut t = Trace::new(mk(&[0.0, 0.0]));
        t.record(Digraph::complete(2), mk(&[0.0, 0.0]));
        assert!(t.round_ratios(1e-300).is_empty());
    }
}
