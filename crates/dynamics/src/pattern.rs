//! Communication patterns: the adversary's graph choices, round by round.
//!
//! A communication pattern (paper §2) is an infinite sequence of graphs
//! from the network model. [`PatternSource`] produces it lazily; the
//! proof adversaries of `consensus-valency` instead drive
//! [`crate::Execution::step`] directly, because their choices depend on
//! forked probe executions, not just on the round number.

use consensus_digraph::Digraph;
use consensus_netmodel::sampler::GraphSampler;

/// A lazily generated communication pattern.
pub trait PatternSource {
    /// The graph for round `round` (1-based, matching the paper).
    fn next_graph(&mut self, round: u64) -> Digraph;
}

impl<P: PatternSource + ?Sized> PatternSource for &mut P {
    fn next_graph(&mut self, round: u64) -> Digraph {
        (**self).next_graph(round)
    }
}

/// The constant pattern `G, G, G, …`.
#[derive(Debug, Clone)]
pub struct ConstantPattern {
    g: Digraph,
}

impl ConstantPattern {
    /// Creates the constant pattern.
    #[must_use]
    pub fn new(g: Digraph) -> Self {
        ConstantPattern { g }
    }
}

impl PatternSource for ConstantPattern {
    fn next_graph(&mut self, _round: u64) -> Digraph {
        self.g.clone()
    }
}

/// A periodic pattern `G_1, …, G_k, G_1, …` (e.g. the σ_i macro-rounds
/// of §6 are `Ψ_i` repeated `n − 2` times).
#[derive(Debug, Clone)]
pub struct PeriodicPattern {
    graphs: Vec<Digraph>,
    pos: usize,
}

impl PeriodicPattern {
    /// Creates a periodic pattern from a non-empty graph sequence.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty.
    #[must_use]
    pub fn new(graphs: Vec<Digraph>) -> Self {
        assert!(!graphs.is_empty(), "periodic pattern needs ≥ 1 graph");
        PeriodicPattern { graphs, pos: 0 }
    }
}

impl PatternSource for PeriodicPattern {
    fn next_graph(&mut self, _round: u64) -> Digraph {
        let g = self.graphs[self.pos].clone();
        self.pos = (self.pos + 1) % self.graphs.len();
        g
    }
}

/// A finite prefix followed by a constant tail — the shape of the
/// valency probe continuations (Lemma 7: one round of `G`, then the
/// deaf graph `D_i` forever).
#[derive(Debug, Clone)]
pub struct SeqThenConstant {
    prefix: Vec<Digraph>,
    pos: usize,
    tail: Digraph,
}

impl SeqThenConstant {
    /// Creates the pattern `prefix · tail^ω`.
    #[must_use]
    pub fn new(prefix: Vec<Digraph>, tail: Digraph) -> Self {
        SeqThenConstant {
            prefix,
            pos: 0,
            tail,
        }
    }
}

impl PatternSource for SeqThenConstant {
    fn next_graph(&mut self, _round: u64) -> Digraph {
        if self.pos < self.prefix.len() {
            self.pos += 1;
            self.prefix[self.pos - 1].clone()
        } else {
            self.tail.clone()
        }
    }
}

/// An i.i.d. random pattern drawn from a [`GraphSampler`]
/// (uniform over a [`consensus_netmodel::NetworkModel`], or one of the
/// constructive samplers for predicate models).
pub struct RandomPattern<S> {
    sampler: S,
    rng: rand::rngs::StdRng,
}

impl<S: GraphSampler> RandomPattern<S> {
    /// Creates a reproducible random pattern with the given seed.
    #[must_use]
    pub fn new(sampler: S, seed: u64) -> Self {
        use rand::SeedableRng;
        RandomPattern {
            sampler,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl<S: GraphSampler> PatternSource for RandomPattern<S> {
    fn next_graph(&mut self, _round: u64) -> Digraph {
        self.sampler.sample(&mut self.rng)
    }
}

impl<S> std::fmt::Debug for RandomPattern<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RandomPattern")
    }
}

/// A uniformly random walk over a
/// [`PatternAutomaton`](consensus_netmodel::property::PatternAutomaton) —
/// samples
/// patterns from a §6.1 property (e.g. `P_seq`, the σ-block property of
/// Theorem 3).
pub struct AutomatonPattern {
    automaton: consensus_netmodel::property::PatternAutomaton,
    state: usize,
    rng: rand::rngs::StdRng,
}

impl AutomatonPattern {
    /// Starts a reproducible random walk from the automaton's start
    /// state.
    #[must_use]
    pub fn new(automaton: consensus_netmodel::property::PatternAutomaton, seed: u64) -> Self {
        use rand::SeedableRng;
        let state = automaton.start();
        AutomatonPattern {
            automaton,
            state,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// The current automaton state (e.g. to detect block boundaries).
    #[must_use]
    pub fn state(&self) -> usize {
        self.state
    }
}

impl PatternSource for AutomatonPattern {
    fn next_graph(&mut self, _round: u64) -> Digraph {
        use rand::prelude::IndexedRandom;
        let (g, next) = self
            .automaton
            .choices(self.state)
            .choose(&mut self.rng)
            .expect("automaton states are total")
            .clone();
        self.state = next;
        g
    }
}

impl std::fmt::Debug for AutomatonPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AutomatonPattern(state={})", self.state)
    }
}

/// A pattern computed by a closure of the round number — handy for
/// one-off adversaries in tests and examples.
pub struct FnPattern<F>(pub F);

impl<F: FnMut(u64) -> Digraph> PatternSource for FnPattern<F> {
    fn next_graph(&mut self, round: u64) -> Digraph {
        (self.0)(round)
    }
}

impl<F> std::fmt::Debug for FnPattern<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnPattern")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_digraph::families;
    use consensus_netmodel::NetworkModel;

    #[test]
    fn constant_repeats() {
        let g = Digraph::complete(3);
        let mut p = ConstantPattern::new(g.clone());
        for r in 1..=5 {
            assert_eq!(p.next_graph(r), g);
        }
    }

    #[test]
    fn periodic_wraps() {
        let [h0, h1, h2] = families::two_agent();
        let mut p = PeriodicPattern::new(vec![h0.clone(), h1.clone(), h2.clone()]);
        assert_eq!(p.next_graph(1), h0);
        assert_eq!(p.next_graph(2), h1);
        assert_eq!(p.next_graph(3), h2);
        assert_eq!(p.next_graph(4), h0);
    }

    #[test]
    fn seq_then_constant() {
        let [h0, h1, h2] = families::two_agent();
        let mut p = SeqThenConstant::new(vec![h0.clone(), h1.clone()], h2.clone());
        assert_eq!(p.next_graph(1), h0);
        assert_eq!(p.next_graph(2), h1);
        assert_eq!(p.next_graph(3), h2);
        assert_eq!(p.next_graph(4), h2);
    }

    #[test]
    fn random_pattern_is_reproducible() {
        let m = NetworkModel::two_agent();
        let mut a = RandomPattern::new(m.clone(), 42);
        let mut b = RandomPattern::new(m, 42);
        for r in 1..=10 {
            assert_eq!(a.next_graph(r), b.next_graph(r));
        }
    }

    #[test]
    fn automaton_pattern_respects_blocks() {
        use consensus_netmodel::property::PatternAutomaton;
        let n = 5;
        let a = PatternAutomaton::sigma_blocks(n);
        let mut p = AutomatonPattern::new(a.clone(), 3);
        // Collect 4 blocks worth of graphs; the prefix must be accepted.
        let graphs: Vec<Digraph> = (0..4 * (n - 2) as u64)
            .map(|r| p.next_graph(r + 1))
            .collect();
        assert!(a.accepts_prefix(&graphs));
        // Each block is constant: graphs within a block are equal.
        for b in 0..4 {
            let block = &graphs[b * (n - 2)..(b + 1) * (n - 2)];
            assert!(block.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn fn_pattern_sees_round_number() {
        let mut p = FnPattern(|round: u64| {
            if round.is_multiple_of(2) {
                Digraph::complete(2)
            } else {
                Digraph::empty(2)
            }
        });
        assert_eq!(p.next_graph(1), Digraph::empty(2));
        assert_eq!(p.next_graph(2), Digraph::complete(2));
    }
}
