//! Synchronous round-based execution engine for consensus in dynamic
//! networks.
//!
//! This crate implements the computational model of the paper's §2 (in
//! the spirit of the Heard-Of model \[10\]): computation proceeds in
//! communication-closed rounds; in round `t` the adversary picks a
//! communication graph `G_t` from the network model, every agent sends
//! its message to its out-neighbors, receives from its in-neighbors
//! (always including itself), and applies its deterministic transition
//! function.
//!
//! * [`Scenario`] — **the** entry point: a builder over *algorithm ×
//!   driver × faults × stop condition* that runs any experiment shape
//!   of the paper and returns a [`Trace`];
//! * [`Execution`] — the low-level stepper: per-agent states,
//!   zero-allocation single-round stepping over a shared message slate,
//!   forking (for valency probes);
//! * [`scenario::Driver`] — the graph-choice abstraction behind
//!   [`Scenario`]: pattern replay, state-dependent topologies, and the
//!   probing lower-bound adversaries all implement it;
//! * [`pattern`] — [`pattern::PatternSource`] implementations: constant,
//!   periodic, sequential, sampled-random patterns;
//! * [`metric`] — the [`Metric`] spread measures behind
//!   [`Scenario::decide`]: [`HullDiameter`] (the paper's `Δ`, default)
//!   and [`BoxDiameter`] (per-coordinate `L∞`), so multidimensional
//!   decision rounds are measured in hull diameter;
//! * [`Trace`] — the recorded run: per-round outputs, diameters
//!   `Δ(y(t))`, and contraction-rate estimators matching the paper's
//!   `sup_E limsup_t (δ(C_t))^{1/t}` definition (§3);
//! * [`byzantine`] — value-fault strategies (two-faced senders) for the
//!   cautious-rule experiments tied to the Byzantine lineage \[14\],
//!   injected via [`Scenario::faults`].
//!
//! # Example
//!
//! ```
//! use consensus_algorithms::{Midpoint, Point};
//! use consensus_digraph::Digraph;
//! use consensus_dynamics::{pattern::ConstantPattern, Scenario};
//!
//! // Midpoint on a 3-clique: exact agreement after one round.
//! let inits = [Point([0.0]), Point([1.0]), Point([0.25])];
//! let trace = Scenario::new(Midpoint, &inits)
//!     .pattern(ConstantPattern::new(Digraph::complete(3)))
//!     .run(1);
//! assert!(trace.final_diameter() < 1e-15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
mod diameter_trace;
mod executor;
pub mod metric;
pub mod pattern;
pub mod scenario;
mod sharded;
mod trace;

pub use diameter_trace::DiameterTrace;
pub use executor::{Execution, LimitEstimate};
pub use metric::{BoxDiameter, HullDiameter, Metric};
pub use scenario::{FaultyScenario, Scenario};
pub use sharded::{ShardedExecution, DEFAULT_CHUNK};
pub use trace::{estimate_rates, RateEstimate, Trace};
