//! Synchronous round-based execution engine for consensus in dynamic
//! networks.
//!
//! This crate implements the computational model of the paper's §2 (in
//! the spirit of the Heard-Of model [10]): computation proceeds in
//! communication-closed rounds; in round `t` the adversary picks a
//! communication graph `G_t` from the network model, every agent sends
//! its message to its out-neighbors, receives from its in-neighbors
//! (always including itself), and applies its deterministic transition
//! function.
//!
//! * [`Execution`] — the live system: per-agent states, single-round
//!   stepping, forking (for valency probes);
//! * [`pattern`] — [`pattern::PatternSource`] implementations: constant,
//!   periodic, sequential, sampled-random patterns;
//! * [`Trace`] — the recorded run: per-round outputs, diameters
//!   `Δ(y(t))`, and contraction-rate estimators matching the paper's
//!   `sup_E limsup_t (δ(C_t))^{1/t}` definition (§3);
//! * [`byzantine`] — value-fault injection (two-faced senders) for the
//!   cautious-rule experiments tied to the Byzantine lineage [14].
//!
//! # Example
//!
//! ```
//! use consensus_algorithms::{Midpoint, Point};
//! use consensus_digraph::Digraph;
//! use consensus_dynamics::{pattern::ConstantPattern, Execution};
//!
//! // Midpoint on a 3-clique: exact agreement after one round.
//! let inits = [Point([0.0]), Point([1.0]), Point([0.25])];
//! let mut exec = Execution::new(Midpoint, &inits);
//! let trace = exec.run(&mut ConstantPattern::new(Digraph::complete(3)), 1);
//! assert!(trace.final_diameter() < 1e-15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
mod executor;
pub mod pattern;
mod trace;

pub use executor::Execution;
pub use trace::{RateEstimate, Trace};
