//! Convergence metrics: how a [`crate::Scenario`] measures "how far
//! from agreement" a configuration is.
//!
//! The source paper's scalar experiments measure the value spread
//! `Δ(y(t)) = max_i y_i − min_i y_i`, which in `R^d` generalises in more
//! than one way. The [`Metric`] trait abstracts the choice so decision
//! rounds ([`crate::Scenario::decide`]) can be measured in **hull
//! diameter** — the ε-agreement notion of the multidimensional
//! experiments (arXiv:1805.04923) — or in the coarser bounding-box
//! diameter the coordinate-wise algorithms contract. For `D = 1` every
//! metric here coincides with the scalar spread.

use consensus_algorithms::{box_diameter, diameter, Point};

/// A configuration-spread measure: maps the output vector `y(t)` to a
/// non-negative scalar that is 0 exactly at agreement.
///
/// [`crate::Scenario::decide`] stops a run at the first block boundary
/// where the configured metric drops to ≤ ε, so the metric choice *is*
/// the definition of the decision event: hull-diameter ε-agreement
/// (the default, [`HullDiameter`]) or per-coordinate ε-agreement
/// ([`BoxDiameter`]). Implementations must be deterministic pure
/// functions of the output vector — the reproducibility guarantees of
/// the sweep harness rely on it.
///
/// Closures `Fn(&[Point<D>]) -> f64` implement the trait, so ad-hoc
/// metrics need no newtype:
///
/// ```
/// use consensus_algorithms::float::det_max;
/// use consensus_algorithms::{Midpoint, Point};
/// use consensus_digraph::Digraph;
/// use consensus_dynamics::{metric::Metric, pattern::ConstantPattern, Scenario};
///
/// // Decide when every agent is within ε of agent 0 (a "leader" metric).
/// let leader = |outs: &[Point<1>]| {
///     outs.iter().map(|p| p.dist(&outs[0])).fold(0.0, det_max)
/// };
/// let inits = [Point([0.0]), Point([1.0]), Point([0.5])];
/// let mut sc = Scenario::new(Midpoint, &inits)
///     .pattern(ConstantPattern::new(Digraph::complete(3)))
///     .metric(leader)
///     .decide(1e-9);
/// assert_eq!(sc.decision_round(16), Some(1));
/// ```
pub trait Metric<const D: usize> {
    /// The spread of the configuration (0 exactly at agreement).
    fn measure(&self, outputs: &[Point<D>]) -> f64;

    /// A short stable label for reports and tables.
    fn name(&self) -> &'static str {
        "custom"
    }
}

impl<F, const D: usize> Metric<D> for F
where
    F: Fn(&[Point<D>]) -> f64,
{
    fn measure(&self, outputs: &[Point<D>]) -> f64 {
        self(outputs)
    }
}

/// The **Euclidean (convex-hull) diameter** `Δ(y) = max_{i,j} ‖y_i −
/// y_j‖` — the paper's `Δ` (§2.1) and the ε-agreement notion of the
/// multidimensional decision-time experiments. The diameter of a finite
/// set equals the diameter of its convex hull, hence the name. This is
/// the default metric of [`crate::Scenario`]; for `D = 1` it is the
/// scalar spread `max − min`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HullDiameter;

impl<const D: usize> Metric<D> for HullDiameter {
    fn measure(&self, outputs: &[Point<D>]) -> f64 {
        diameter(outputs)
    }

    fn name(&self) -> &'static str {
        "hull-diameter"
    }
}

/// The **bounding-box (`L∞`) diameter**: the largest per-coordinate
/// spread `max_c (max_i y_i[c] − min_i y_i[c])`. This is the quantity
/// the coordinate-wise midpoint contracts by `1/2` per non-split round;
/// it under-estimates [`HullDiameter`] by up to a `√D` factor, which is
/// exactly the decision-time gap the multidimensional golden sweep
/// pins. For `D = 1` the two metrics coincide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoxDiameter;

impl<const D: usize> Metric<D> for BoxDiameter {
    fn measure(&self, outputs: &[Point<D>]) -> f64 {
        box_diameter(outputs)
    }

    fn name(&self) -> &'static str {
        "box-diameter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_dominates_box_within_sqrt_d() {
        let outs = [Point([0.0, 0.0]), Point([3.0, 4.0]), Point([1.0, 1.0])];
        let hull = HullDiameter.measure(&outs);
        let boxd = BoxDiameter.measure(&outs);
        assert_eq!(hull, 5.0);
        assert_eq!(boxd, 4.0);
        assert!(boxd <= hull && hull <= 2f64.sqrt() * boxd);
    }

    #[test]
    fn metrics_coincide_at_d1() {
        let outs = [Point([0.25]), Point([1.0]), Point([0.5])];
        assert_eq!(HullDiameter.measure(&outs), 0.75);
        assert_eq!(BoxDiameter.measure(&outs), 0.75);
    }

    #[test]
    fn closures_are_metrics() {
        let l1 = |outs: &[Point<2>]| {
            outs.iter()
                .flat_map(|p| p.0.iter())
                .fold(0.0f64, |a, &x| a.max(x.abs()))
        };
        assert_eq!(l1.measure(&[Point([1.0, -2.0])]), 2.0);
        assert_eq!(Metric::<2>::name(&l1), "custom");
        assert_eq!(Metric::<2>::name(&HullDiameter), "hull-diameter");
        assert_eq!(Metric::<2>::name(&BoxDiameter), "box-diameter");
    }

    #[test]
    fn zero_at_agreement() {
        let outs = [Point([0.5, 0.5]); 4];
        assert_eq!(HullDiameter.measure(&outs), 0.0);
        assert_eq!(BoxDiameter.measure(&outs), 0.0);
    }
}
