//! The [`Execution`] engine: states, rounds, forking.

use consensus_algorithms::{diameter, Algorithm, Point};
use consensus_digraph::Digraph;

use crate::pattern::PatternSource;
use crate::Trace;

/// A live execution of an algorithm: one state per agent, advanced one
/// communication-closed round at a time (paper §2).
///
/// `Execution` is [`Clone`] (when the algorithm is), which is how the
/// valency engine forks a configuration `C` into the different successor
/// executions `G.C` needed by the lower-bound adversaries.
#[derive(Clone)]
pub struct Execution<A: Algorithm<D>, const D: usize> {
    alg: A,
    states: Vec<A::State>,
    round: u64,
}

impl<A: Algorithm<D>, const D: usize> Execution<A, D> {
    /// Starts an execution of `alg` from the given initial values
    /// (one per agent; `inits.len()` is the number of agents `n`).
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty or has more than 64 agents.
    #[must_use]
    pub fn new(alg: A, inits: &[Point<D>]) -> Self {
        assert!(!inits.is_empty() && inits.len() <= 64, "need 1..=64 agents");
        let states = inits
            .iter()
            .enumerate()
            .map(|(i, &y0)| alg.init(i, y0))
            .collect();
        Execution {
            alg,
            states,
            round: 0,
        }
    }

    /// The number of agents.
    #[must_use]
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// The number of completed rounds (`t`; round 0 is the initial
    /// configuration).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The algorithm being executed.
    #[must_use]
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// The current output vector `y(t) = (y_1(t), …, y_n(t))`.
    #[must_use]
    pub fn outputs(&self) -> Vec<Point<D>> {
        self.states.iter().map(|s| self.alg.output(s)).collect()
    }

    /// The current value spread `Δ(y(t))` (paper §2.1).
    #[must_use]
    pub fn value_diameter(&self) -> f64 {
        diameter(&self.outputs())
    }

    /// Read access to an agent's state (used by state-aware tests).
    ///
    /// # Panics
    ///
    /// Panics if `agent ≥ n`.
    #[must_use]
    pub fn state(&self, agent: usize) -> &A::State {
        &self.states[agent]
    }

    /// Executes one round with communication graph `g`: collect all
    /// messages, deliver along `g`'s edges (in-neighbors, self included),
    /// apply the transition function everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `g.n() != self.n()`.
    pub fn step(&mut self, g: &Digraph) {
        assert_eq!(g.n(), self.n(), "graph size must match agent count");
        self.round += 1;
        let msgs: Vec<A::Msg> = self.states.iter().map(|s| self.alg.message(s)).collect();
        for (i, state) in self.states.iter_mut().enumerate() {
            let inbox: Vec<(usize, A::Msg)> =
                g.in_neighbors(i).map(|j| (j, msgs[j].clone())).collect();
            self.alg.step(i, state, &inbox, self.round);
        }
    }

    /// Runs `rounds` rounds driven by `pattern`, recording a [`Trace`]
    /// (which includes the configuration *before* the first recorded
    /// round). The execution can be continued afterwards.
    pub fn run<P: PatternSource>(&mut self, pattern: &mut P, rounds: usize) -> Trace<D> {
        let mut trace = Trace::new(self.outputs());
        for _ in 0..rounds {
            let g = pattern.next_graph(self.round + 1);
            self.step(&g);
            trace.record(g, self.outputs());
        }
        trace
    }

    /// Runs until the value spread drops below `tol` or `max_rounds` is
    /// reached, whichever comes first.
    pub fn run_until_converged<P: PatternSource>(
        &mut self,
        pattern: &mut P,
        tol: f64,
        max_rounds: usize,
    ) -> Trace<D> {
        let mut trace = Trace::new(self.outputs());
        for _ in 0..max_rounds {
            if self.value_diameter() <= tol {
                break;
            }
            let g = pattern.next_graph(self.round + 1);
            self.step(&g);
            trace.record(g, self.outputs());
        }
        trace
    }

    /// Runs under `pattern` until convergence and returns the common
    /// limit estimate (the centroid of the final outputs). Used by the
    /// valency engine as “the limit of this continuation”.
    pub fn limit_estimate<P: PatternSource>(
        &mut self,
        pattern: &mut P,
        tol: f64,
        max_rounds: usize,
    ) -> Point<D> {
        self.run_until_converged(pattern, tol, max_rounds);
        let outs = self.outputs();
        let mut acc = Point::ZERO;
        for p in &outs {
            acc += *p;
        }
        acc * (1.0 / outs.len() as f64)
    }
}

impl<A: Algorithm<D> + std::fmt::Debug, const D: usize> std::fmt::Debug for Execution<A, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution")
            .field("alg", &self.alg)
            .field("round", &self.round)
            .field("outputs", &self.outputs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{ConstantPattern, PeriodicPattern};
    use consensus_algorithms::{MeanValue, Midpoint, TwoAgentThirds};
    use consensus_digraph::families;

    fn pts(vals: &[f64]) -> Vec<Point<1>> {
        vals.iter().map(|&v| Point([v])).collect()
    }

    #[test]
    fn clique_midpoint_one_round() {
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0, 0.3]));
        e.step(&Digraph::complete(3));
        let outs = e.outputs();
        for o in outs {
            assert!((o[0] - 0.5).abs() < 1e-15);
        }
        assert_eq!(e.round(), 1);
    }

    #[test]
    fn deaf_adversary_halves_midpoint_diameter() {
        // Constant F_0 (agent 0 deaf in K_3): spread halves every round.
        let f0 = Digraph::complete(3).make_deaf(0);
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0, 1.0]));
        let mut d = e.value_diameter();
        for _ in 0..20 {
            e.step(&f0);
            let nd = e.value_diameter();
            assert!((nd - d / 2.0).abs() < 1e-12, "exact halving expected");
            d = nd;
        }
    }

    #[test]
    fn two_agent_thirds_under_h1() {
        let [_, h1, _] = families::two_agent();
        let mut e = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let trace = e.run(&mut ConstantPattern::new(h1), 12);
        let rate = trace.rates().t_root;
        assert!((rate - 1.0 / 3.0).abs() < 1e-9, "rate = {rate}");
    }

    #[test]
    fn run_until_converged_stops_early() {
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 8.0]));
        let mut p = ConstantPattern::new(Digraph::complete(2));
        let trace = e.run_until_converged(&mut p, 1e-9, 1_000);
        assert!(trace.rounds() <= 2, "clique agreement is immediate");
        assert!(e.value_diameter() <= 1e-9);
    }

    #[test]
    fn periodic_pattern_cycles() {
        let [h0, h1, h2] = families::two_agent();
        let mut e = Execution::new(MeanValue, &pts(&[0.0, 1.0]));
        let mut p = PeriodicPattern::new(vec![h0, h1, h2]);
        let trace = e.run(&mut p, 6);
        assert_eq!(trace.rounds(), 6);
        assert!(trace.final_diameter() < trace.initial_diameter());
    }

    #[test]
    fn fork_preserves_determinism() {
        let mut a = Execution::new(Midpoint, &pts(&[0.0, 1.0, 0.5, 0.7]));
        a.step(&families::star_out(4, 2));
        let mut b = a.clone();
        let g = families::cycle(4);
        a.step(&g);
        b.step(&g);
        assert_eq!(a.outputs(), b.outputs(), "forked executions must agree");
    }

    #[test]
    fn limit_estimate_on_clique_is_midrange() {
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        let mut p = ConstantPattern::new(Digraph::complete(2));
        let lim = e.limit_estimate(&mut p, 1e-12, 100);
        assert!((lim[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "graph size")]
    fn size_mismatch_panics() {
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        e.step(&Digraph::complete(3));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use consensus_algorithms::{MeanValue, Midpoint};

    #[test]
    fn single_agent_execution_is_trivial() {
        let mut e = Execution::new(Midpoint, &[Point([0.7])]);
        e.step(&Digraph::complete(1));
        assert_eq!(e.outputs(), vec![Point([0.7])]);
        assert_eq!(e.value_diameter(), 0.0);
    }

    #[test]
    fn sixty_four_agents_supported() {
        let inits: Vec<Point<1>> = (0..64).map(|i| Point([i as f64])).collect();
        let mut e = Execution::new(MeanValue, &inits);
        e.step(&Digraph::complete(64));
        assert!(
            e.value_diameter() < 1e-9,
            "complete graph averages in one round"
        );
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn sixty_five_agents_rejected() {
        let inits: Vec<Point<1>> = (0..65).map(|i| Point([i as f64])).collect();
        let _ = Execution::new(MeanValue, &inits);
    }
}
