//! The [`Execution`] engine: states, rounds, forking.

use consensus_algorithms::{diameter, Algorithm, Inbox, Point};
use consensus_digraph::{agents_in, AgentSet, Digraph};

use crate::byzantine::ByzantineStrategy;
use crate::pattern::PatternSource;

/// A live execution of an algorithm: one state per agent, advanced one
/// communication-closed round at a time (paper §2).
///
/// `Execution` is the low-level stepper: it owns the per-agent states,
/// a reused message slate (gathered once per round — stepping performs
/// **no per-round heap allocation** after warm-up), and a cache of the
/// current outputs. High-level runs (patterns, adversaries, faults,
/// decision measurement) go through [`crate::Scenario`].
///
/// `Execution` is [`Clone`] (when the algorithm is), which is how the
/// valency engine forks a configuration `C` into the different successor
/// executions `G.C` needed by the lower-bound adversaries.
#[derive(Clone)]
pub struct Execution<A: Algorithm<D>, const D: usize> {
    alg: A,
    states: Vec<A::State>,
    /// Cached `y(t)`, refreshed after every step.
    outs: Vec<Point<D>>,
    /// Reused per-round message slate (`msgs[j]` = agent `j`'s broadcast).
    msgs: Vec<A::Msg>,
    /// Reused forged-slate scratch for [`Execution::step_with_faults`]
    /// (empty unless faults are injected).
    fault_msgs: Vec<A::Msg>,
    round: u64,
}

impl<A: Algorithm<D>, const D: usize> Execution<A, D> {
    /// Starts an execution of `alg` from the given initial values
    /// (one per agent; `inits.len()` is the number of agents `n`).
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty or has more than 64 agents.
    #[must_use]
    pub fn new(alg: A, inits: &[Point<D>]) -> Self {
        assert!(!inits.is_empty() && inits.len() <= 64, "need 1..=64 agents");
        let states: Vec<A::State> = inits
            .iter()
            .enumerate()
            .map(|(i, &y0)| alg.init(i, y0))
            .collect();
        let outs = states.iter().map(|s| alg.output(s)).collect();
        Execution {
            alg,
            states,
            outs,
            msgs: Vec::with_capacity(inits.len()),
            fault_msgs: Vec::new(),
            round: 0,
        }
    }

    /// The number of agents.
    #[must_use]
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// The number of completed rounds (`t`; round 0 is the initial
    /// configuration).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The algorithm being executed.
    #[must_use]
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// The current output vector `y(t) = (y_1(t), …, y_n(t))`, borrowed
    /// from the executor's cache — no allocation.
    #[must_use]
    pub fn outputs_slice(&self) -> &[Point<D>] {
        &self.outs
    }

    /// The current output vector as an owned `Vec` (a copy of the
    /// cache). Prefer [`Execution::outputs_slice`] on hot paths.
    #[must_use]
    pub fn outputs(&self) -> Vec<Point<D>> {
        self.outs.clone()
    }

    /// The current value spread `Δ(y(t))` (paper §2.1). Reads the output
    /// cache; no allocation.
    #[must_use]
    pub fn value_diameter(&self) -> f64 {
        diameter(&self.outs)
    }

    /// Read access to an agent's state (used by state-aware tests).
    ///
    /// # Panics
    ///
    /// Panics if `agent ≥ n`.
    #[must_use]
    pub fn state(&self, agent: usize) -> &A::State {
        &self.states[agent]
    }

    fn refresh_outputs(&mut self) {
        self.outs.clear();
        let alg = &self.alg;
        self.outs.extend(self.states.iter().map(|s| alg.output(s)));
    }

    /// Executes one round with communication graph `g`: gather all
    /// messages once into the shared slate, hand every agent an
    /// [`Inbox`] view masked by its in-neighborhood (self included),
    /// apply the transition function everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `g.n() != self.n()`.
    pub fn step(&mut self, g: &Digraph) {
        assert_eq!(g.n(), self.n(), "graph size must match agent count");
        self.round += 1;
        self.msgs.clear();
        let alg = &self.alg;
        self.msgs.extend(self.states.iter().map(|s| alg.message(s)));
        for (i, state) in self.states.iter_mut().enumerate() {
            let inbox = Inbox::new(g.in_mask(i), &self.msgs);
            self.alg.step(i, state, inbox, self.round);
        }
        self.refresh_outputs();
    }

    /// [`Execution::step`] with round-level telemetry: wraps the round
    /// in a `round` span and emits the resulting diameter, the
    /// contraction ratio Δ(t)/Δ(t−1), and the round's reception count
    /// (the sum of in-degrees, self-loops included) through `tel`.
    ///
    /// The emitted events are a pure function of the execution — the
    /// observed step is bit-identical to [`Execution::step`] and the
    /// event content never depends on threads or time (timestamps ride
    /// the side-channel the injected
    /// [`Clock`](consensus_obs::Clock) feeds).
    ///
    /// # Panics
    ///
    /// Panics if `g.n() != self.n()`.
    pub fn step_observed(&mut self, g: &Digraph, tel: &mut consensus_obs::RoundTelemetry) {
        let round = self.round + 1;
        if !tel.needs_diameter(round) {
            // A decimated round no emitted ratio depends on: run the
            // plain step — zero telemetry overhead.
            self.step(g);
            return;
        }
        tel.begin_round(round);
        self.step(g);
        let receptions: u64 = (0..self.n())
            .map(|i| u64::from(g.in_mask(i).count_ones()))
            .sum();
        tel.end_round(round, self.value_diameter(), receptions);
    }

    /// Runs under `pattern` until the spread drops to ≤ `tol` (or
    /// `max_rounds` elapse) and returns the limit estimate (the centroid
    /// of the final outputs) **together with its convergence status**.
    /// Used by the valency engine as "the limit of this continuation";
    /// records no trace and performs no per-round allocation beyond the
    /// pattern's own graphs.
    ///
    /// [`LimitEstimate::converged`] reports whether the spread actually
    /// reached `tol` within the horizon. A truncated probe (`converged ==
    /// false`) returns the centroid of a configuration that is still
    /// spread out, which is *not* a reachable limit — silently treating
    /// it as one is exactly the bug that can make a valency
    /// under-approximation `δ̂` unsound, so callers must check the flag
    /// (or run in a strict mode that refuses truncated probes).
    pub fn limit_estimate<P: PatternSource>(
        &mut self,
        pattern: &mut P,
        tol: f64,
        max_rounds: usize,
    ) -> LimitEstimate<D> {
        let start = self.round;
        for _ in 0..max_rounds {
            if self.value_diameter() <= tol {
                break;
            }
            let g = pattern.next_graph(self.round + 1);
            self.step(&g);
        }
        let mut acc = Point::ZERO;
        for p in &self.outs {
            acc += *p;
        }
        LimitEstimate {
            point: acc * (1.0 / self.outs.len() as f64),
            converged: self.value_diameter() <= tol,
            rounds: self.round - start,
        }
    }
}

/// The result of [`Execution::limit_estimate`]: the centroid of the
/// final configuration plus whether the run actually converged.
///
/// The centroid is only a trustworthy "limit of this continuation" when
/// [`LimitEstimate::converged`] is `true`; otherwise the probe horizon
/// expired first and the point is the centre of a configuration that is
/// still `> tol` wide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimitEstimate<const D: usize> {
    /// Centroid of the final outputs.
    pub point: Point<D>,
    /// Whether the value spread reached the tolerance within the
    /// horizon. `false` means the estimate is truncated: the point is
    /// **not** a certified reachable limit.
    pub converged: bool,
    /// Rounds actually executed by the probe (`≤ max_rounds`; fewer on
    /// early convergence).
    pub rounds: u64,
}

impl<A: Algorithm<1, Msg = Point<1>>> Execution<A, 1> {
    /// Executes one round with the agents in `byzantine` replaced by
    /// `strategy`: honest agents receive the slate with the liars' slots
    /// overwritten by forged values (per receiver — two-faced faults),
    /// Byzantine agents' states are frozen. Only scalar-message
    /// algorithms can be attacked this way.
    ///
    /// # Panics
    ///
    /// Panics if `g.n() != self.n()` or every agent is Byzantine.
    pub fn step_with_faults(
        &mut self,
        g: &Digraph,
        byzantine: AgentSet,
        strategy: &mut dyn ByzantineStrategy,
    ) {
        assert_eq!(g.n(), self.n(), "graph size must match agent count");
        let n = self.n();
        let all: AgentSet = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let honest = all & !byzantine;
        assert!(honest != 0, "at least one honest agent required");
        self.round += 1;
        self.msgs.clear();
        let alg = &self.alg;
        self.msgs.extend(self.states.iter().map(|s| alg.message(s)));
        // Reused scratch slate: forge only the liars' slots per receiver
        // (two-faced strategies send different lies to each agent) and
        // restore them afterwards — O(f) per receiver, no allocation.
        self.fault_msgs.clear();
        self.fault_msgs.extend(self.msgs.iter().copied());
        for i in agents_in(honest) {
            let forged = g.in_mask(i) & byzantine;
            for j in agents_in(forged) {
                self.fault_msgs[j] = Point([strategy.forge(self.round, j, i)]);
            }
            let inbox = Inbox::new(g.in_mask(i), &self.fault_msgs);
            self.alg.step(i, &mut self.states[i], inbox, self.round);
            for j in agents_in(forged) {
                self.fault_msgs[j] = self.msgs[j];
            }
        }
        self.refresh_outputs();
    }
}

impl<A: Algorithm<D> + std::fmt::Debug, const D: usize> std::fmt::Debug for Execution<A, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution")
            .field("alg", &self.alg)
            .field("round", &self.round)
            .field("outputs", &self.outs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{ConstantPattern, PeriodicPattern};
    use crate::Scenario;
    use consensus_algorithms::{MeanValue, Midpoint, TwoAgentThirds};
    use consensus_digraph::families;

    fn pts(vals: &[f64]) -> Vec<Point<1>> {
        vals.iter().map(|&v| Point([v])).collect()
    }

    #[test]
    fn clique_midpoint_one_round() {
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0, 0.3]));
        e.step(&Digraph::complete(3));
        let outs = e.outputs();
        for o in outs {
            assert!((o[0] - 0.5).abs() < 1e-15);
        }
        assert_eq!(e.round(), 1);
    }

    #[test]
    fn deaf_adversary_halves_midpoint_diameter() {
        // Constant F_0 (agent 0 deaf in K_3): spread halves every round.
        let f0 = Digraph::complete(3).make_deaf(0);
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0, 1.0]));
        let mut d = e.value_diameter();
        for _ in 0..20 {
            e.step(&f0);
            let nd = e.value_diameter();
            assert!((nd - d / 2.0).abs() < 1e-12, "exact halving expected");
            d = nd;
        }
    }

    #[test]
    fn two_agent_thirds_under_h1() {
        let [_, h1, _] = families::two_agent();
        let trace = Scenario::new(TwoAgentThirds, &pts(&[0.0, 1.0]))
            .pattern(ConstantPattern::new(h1))
            .run(12);
        let rate = trace.rates().t_root;
        assert!((rate - 1.0 / 3.0).abs() < 1e-9, "rate = {rate}");
    }

    #[test]
    fn until_converged_stops_early() {
        let mut sc = Scenario::new(Midpoint, &pts(&[0.0, 8.0]))
            .pattern(ConstantPattern::new(Digraph::complete(2)))
            .until_converged(1e-9);
        let trace = sc.run(1_000);
        assert!(trace.rounds() <= 2, "clique agreement is immediate");
        assert!(sc.execution().value_diameter() <= 1e-9);
    }

    #[test]
    fn periodic_pattern_cycles() {
        let [h0, h1, h2] = families::two_agent();
        let trace = Scenario::new(MeanValue, &pts(&[0.0, 1.0]))
            .pattern(PeriodicPattern::new(vec![h0, h1, h2]))
            .run(6);
        assert_eq!(trace.rounds(), 6);
        assert!(trace.final_diameter() < trace.initial_diameter());
    }

    #[test]
    fn fork_preserves_determinism() {
        let mut a = Execution::new(Midpoint, &pts(&[0.0, 1.0, 0.5, 0.7]));
        a.step(&families::star_out(4, 2));
        let mut b = a.clone();
        let g = families::cycle(4);
        a.step(&g);
        b.step(&g);
        assert_eq!(a.outputs(), b.outputs(), "forked executions must agree");
    }

    #[test]
    fn limit_estimate_on_clique_is_midrange() {
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        let mut p = ConstantPattern::new(Digraph::complete(2));
        let lim = e.limit_estimate(&mut p, 1e-12, 100);
        assert!((lim.point[0] - 0.5).abs() < 1e-9);
        assert!(lim.converged);
        assert!(lim.rounds < 100, "clique converges early");
    }

    #[test]
    fn limit_estimate_reports_truncation() {
        // The empty graph never contracts: the horizon expires with the
        // spread intact, and the estimate must say so instead of
        // passing its centroid off as a reachable limit.
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        let mut p = ConstantPattern::new(Digraph::empty(2));
        let lim = e.limit_estimate(&mut p, 1e-12, 50);
        assert!(!lim.converged, "deaf-everywhere pattern cannot converge");
        assert_eq!(lim.rounds, 50, "the whole horizon must be spent");
        assert!((lim.point[0] - 0.5).abs() < 1e-9, "centroid still reported");
    }

    #[test]
    fn outputs_slice_matches_outputs() {
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0, 0.4]));
        assert_eq!(e.outputs_slice(), e.outputs().as_slice());
        e.step(&Digraph::complete(3));
        assert_eq!(e.outputs_slice(), e.outputs().as_slice());
        assert_eq!(e.outputs_slice().len(), 3);
    }

    #[test]
    #[should_panic(expected = "graph size")]
    fn size_mismatch_panics() {
        let mut e = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        e.step(&Digraph::complete(3));
    }

    #[test]
    fn observed_step_is_bit_identical_and_emits_the_curve() {
        use consensus_obs::{lane, RoundTelemetry, TraceHandle};
        let g = Digraph::complete(3).make_deaf(0);
        let mut plain = Execution::new(Midpoint, &pts(&[0.0, 1.0, 1.0]));
        let mut observed = Execution::new(Midpoint, &pts(&[0.0, 1.0, 1.0]));
        let trace = TraceHandle::enabled();
        let mut tel = RoundTelemetry::new(trace.recorder(0, lane::EXECUTOR).expect("enabled"))
            .initial_diameter(observed.value_diameter());
        for _ in 0..6 {
            plain.step(&g);
            observed.step_observed(&g, &mut tel);
        }
        assert_eq!(plain.outputs(), observed.outputs(), "telemetry is inert");
        trace.commit(tel.finish());
        let s = trace.merged();
        let ratios = s.gauge_values("contraction");
        assert_eq!(ratios.len(), 6);
        for r in ratios {
            assert!((r - 0.5).abs() < 1e-12, "deaf F_0 halves the spread: {r}");
        }
        // K_3 with agent 0 deaf: in-degrees 1, 3, 3 (self included).
        assert_eq!(s.counter_total("messages"), 6 * 7);
        assert_eq!(s.events_for_span("round").len(), 12);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use consensus_algorithms::{MeanValue, Midpoint};

    #[test]
    fn single_agent_execution_is_trivial() {
        let mut e = Execution::new(Midpoint, &[Point([0.7])]);
        e.step(&Digraph::complete(1));
        assert_eq!(e.outputs(), vec![Point([0.7])]);
        assert_eq!(e.value_diameter(), 0.0);
    }

    #[test]
    fn sixty_four_agents_supported() {
        let inits: Vec<Point<1>> = (0..64).map(|i| Point([i as f64])).collect();
        let mut e = Execution::new(MeanValue, &inits);
        e.step(&Digraph::complete(64));
        assert!(
            e.value_diameter() < 1e-9,
            "complete graph averages in one round"
        );
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn sixty_five_agents_rejected() {
        let inits: Vec<Point<1>> = (0..65).map(|i| Point([i as f64])).collect();
        let _ = Execution::new(MeanValue, &inits);
    }
}
