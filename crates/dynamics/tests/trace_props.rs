//! Property tests tying [`DiameterTrace`] to the full [`Trace`]: in
//! stride-1 unbounded mode the thin record is **bit-identical** to the
//! full trace's diameter sequence (and rate estimates), and under
//! decimation/ring retention the retained samples are exactly the
//! expected subsequence of the full sequence — decimation never
//! recomputes or perturbs a value.

use consensus_algorithms::Point;
use consensus_digraph::Digraph;
use consensus_dynamics::{DiameterTrace, Trace};
use proptest::prelude::*;

/// Drives a full trace and a thin trace through the same diameter
/// sequence (`outputs {0, d}` have spread exactly `d`).
fn drive(diams: &[f64], thin: &mut DiameterTrace) -> Trace<1> {
    let mk = |d: f64| vec![Point([0.0]), Point([d])];
    let mut full = Trace::new(mk(thin.initial_diameter()));
    for &d in diams {
        full.record(Digraph::complete(2), mk(d));
        thin.record(full.final_diameter());
    }
    full
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stride-1 unbounded: diameters and all three rate estimators are
    /// bit-identical to the full trace.
    #[test]
    fn full_mode_is_bit_identical_to_trace(
        d0 in 0.0f64..4.0,
        diams in prop::collection::vec(0.0f64..4.0, 25),
        len in 0usize..26,
    ) {
        let mut thin = DiameterTrace::new(d0);
        let full = drive(&diams[..len], &mut thin);
        let (a, b) = (full.diameters(), thin.diameters());
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let (ra, rb) = (full.rates(), thin.rates());
        prop_assert_eq!(ra.t_root.to_bits(), rb.t_root.to_bits());
        prop_assert_eq!(ra.steady_state.to_bits(), rb.steady_state.to_bits());
        prop_assert_eq!(ra.worst_round.to_bits(), rb.worst_round.to_bits());
        prop_assert_eq!(
            thin.final_diameter().to_bits(),
            full.final_diameter().to_bits()
        );
    }

    /// Decimation retains exactly rounds `{0, s, 2s, …}`, each sample
    /// bit-equal to the full sequence at that round.
    #[test]
    fn decimated_samples_are_an_exact_subsequence(
        d0 in 0.0f64..4.0,
        diams in prop::collection::vec(0.0f64..4.0, 40),
        len in 0usize..41,
        stride in 1u64..8,
    ) {
        let mut thin = DiameterTrace::new(d0).decimated(stride);
        let full = drive(&diams[..len], &mut thin);
        let all = full.diameters();
        let expect: Vec<(u64, f64)> = (0..all.len() as u64)
            .filter(|r| r % stride == 0)
            .map(|r| (r, all[r as usize]))
            .collect();
        let got: Vec<(u64, f64)> = thin.samples().collect();
        prop_assert_eq!(got.len(), expect.len());
        for ((ra, da), (rb, db)) in got.iter().zip(&expect) {
            prop_assert_eq!(ra, rb);
            prop_assert_eq!(da.to_bits(), db.to_bits());
        }
        // The scalar summaries never decimate.
        prop_assert_eq!(
            thin.final_diameter().to_bits(),
            full.final_diameter().to_bits()
        );
        prop_assert_eq!(thin.rounds(), full.rounds() as u64);
    }

    /// Ring retention keeps exactly the tail of the decimated
    /// subsequence, and the initial/final scalars survive eviction.
    #[test]
    fn ring_keeps_the_exact_tail(
        d0 in 0.0f64..4.0,
        diams in prop::collection::vec(0.0f64..4.0, 40),
        stride in 1u64..5,
        cap in 1usize..9,
    ) {
        let mut thin = DiameterTrace::new(d0).decimated(stride).ring(cap);
        let full = drive(&diams, &mut thin);
        let all = full.diameters();
        let sampled: Vec<(u64, f64)> = (0..all.len() as u64)
            .filter(|r| r % stride == 0)
            .map(|r| (r, all[r as usize]))
            .collect();
        let tail = &sampled[sampled.len().saturating_sub(cap)..];
        let got: Vec<(u64, f64)> = thin.samples().collect();
        prop_assert_eq!(got.len(), tail.len());
        for ((ra, da), (rb, db)) in got.iter().zip(tail) {
            prop_assert_eq!(ra, rb);
            prop_assert_eq!(da.to_bits(), db.to_bits());
        }
        prop_assert_eq!(thin.initial_diameter().to_bits(), d0.to_bits());
        prop_assert_eq!(
            thin.final_diameter().to_bits(),
            full.final_diameter().to_bits()
        );
    }
}
