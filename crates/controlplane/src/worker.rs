//! Spawned worker processes: the coordinator side of the
//! `sweep-worker` protocol.
//!
//! A [`ProcessPool`] owns a stack of idle worker processes. Dispatching
//! a cell pops one (spawning lazily if the stack is empty), writes one
//! request line, reads one response line, and pushes the worker back.
//! Workers that die mid-cell — crash, kill, malformed output — are
//! discarded and counted as a restart; the *cell* error is returned to
//! the coordinator, whose retry policy (once, then `WorkerFailed`)
//! decides what happens next. A retried cell therefore runs on a fresh
//! process.
//!
//! Workers exit on stdin EOF, so dropping the pool (which drops every
//! child's stdin) is a clean broadcast shutdown — no signals needed.
//! Because each cell's result is a pure function of `(grid, preset,
//! base_seed, cell)`, *which* process runs a cell never matters: the
//! process path aggregates bit-identically to the in-process path.

use std::io::{BufRead as _, BufReader, Write as _};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::Mutex;

use consensus_sweep::CellOutcome;

use crate::coordinator::CellExecutor;
use crate::metrics::Metrics;
use crate::protocol;

/// How to spawn one worker process.
#[derive(Debug, Clone)]
pub struct WorkerSpawn {
    /// The worker binary.
    pub program: PathBuf,
    /// Its arguments (grid/preset/seed configuration — fixed per run).
    pub args: Vec<String>,
}

/// One live worker process with its pipes.
#[derive(Debug)]
struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl WorkerProc {
    fn spawn(spawn: &WorkerSpawn) -> Result<WorkerProc, String> {
        let mut child = Command::new(&spawn.program)
            .args(&spawn.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn worker {}: {e}", spawn.program.display()))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(WorkerProc {
            child,
            stdin,
            stdout,
        })
    }

    /// One request/response round trip.
    fn run_cell(&mut self, cell: u64) -> Result<protocol::Response, String> {
        let mut line = protocol::encode_request(cell);
        line.push('\n');
        self.stdin
            .write_all(line.as_bytes())
            .and_then(|()| self.stdin.flush())
            .map_err(|e| format!("worker hung up on request for cell {cell}: {e}"))?;
        let mut reply = String::new();
        let n = self
            .stdout
            .read_line(&mut reply)
            .map_err(|e| format!("cannot read worker reply for cell {cell}: {e}"))?;
        if n == 0 {
            return Err(format!("worker exited before replying for cell {cell}"));
        }
        let resp = protocol::decode_response(reply.trim_end())
            .map_err(|e| format!("malformed worker reply for cell {cell}: {e}"))?;
        let echoed = match &resp {
            protocol::Response::Done { cell, .. } | protocol::Response::Failed { cell, .. } => {
                *cell
            }
        };
        if echoed != cell {
            return Err(format!(
                "worker answered cell {echoed} to a request for cell {cell}"
            ));
        }
        Ok(resp)
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        // Closing stdin asks the worker to exit; reap it so no zombies
        // accumulate over a long sweep.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A pool of spawned worker processes implementing [`CellExecutor`].
///
/// Thread-safe: the idle stack is a mutex, but each round trip happens
/// *outside* the lock, so `N` coordinator threads drive `N` concurrent
/// worker processes.
#[derive(Debug)]
pub struct ProcessPool<'m> {
    spawn: WorkerSpawn,
    idle: Mutex<Vec<WorkerProc>>,
    metrics: &'m Metrics,
}

impl<'m> ProcessPool<'m> {
    /// A pool that spawns workers on demand with the given command
    /// line, reporting restarts to `metrics`.
    #[must_use]
    pub fn new(spawn: WorkerSpawn, metrics: &'m Metrics) -> Self {
        ProcessPool {
            spawn,
            idle: Mutex::new(Vec::new()),
            metrics,
        }
    }

    fn take_worker(&self) -> Result<WorkerProc, String> {
        if let Some(w) = self.idle.lock().expect("worker stack poisoned").pop() {
            return Ok(w);
        }
        WorkerProc::spawn(&self.spawn)
    }
}

impl CellExecutor for ProcessPool<'_> {
    fn run_cell(&self, cell: usize) -> Result<Vec<CellOutcome>, String> {
        let mut worker = self.take_worker()?;
        match worker.run_cell(cell as u64) {
            Ok(protocol::Response::Done { outcomes, .. }) => {
                // Healthy worker: back on the stack for the next cell.
                self.idle
                    .lock()
                    .expect("worker stack poisoned")
                    .push(worker);
                Ok(outcomes)
            }
            Ok(protocol::Response::Failed { error, .. }) => {
                // The worker survived and reported a cell error; keep it.
                self.idle
                    .lock()
                    .expect("worker stack poisoned")
                    .push(worker);
                Err(error)
            }
            Err(e) => {
                // Transport failure: the process is suspect. Drop it
                // (kill + reap) and let the retry run on a fresh spawn.
                self.metrics.worker_restart();
                drop(worker);
                Err(e)
            }
        }
    }
}
