//! The line-delimited JSON protocol between the coordinator and a
//! `sweep-worker` process.
//!
//! One request line in, one response line out, over the worker's
//! stdin/stdout — the same one-process-per-pipe shape as an LSP server,
//! minus the framing headers. The grid, preset, and base seed are fixed
//! per worker (passed as process arguments at spawn), so a request only
//! names the cell:
//!
//! ```text
//! → {"cell": 7}
//! ← {"cell": 7, "status": "done", "outcomes": [{"rate_bits": "3fe0000000000000",
//!      "decision_round": 12, "rounds": 12, "converged": true,
//!      "fingerprint": "00000000deadbeef"}]}
//! ← {"cell": 7, "status": "failed", "error": "..."}        (on a cell error)
//! ```
//!
//! `rate_bits` and `fingerprint` are raw hexadecimal `u64`s — the rate
//! crosses the pipe as its exact `f64::to_bits` pattern, never as a
//! decimal, so the process-worker path aggregates **bit**-identically to
//! the in-process path. The parser below is a minimal hand-rolled JSON
//! reader (the workspace is offline; no serde): it accepts arbitrary
//! whitespace and field order but only the scalar shapes this protocol
//! uses.

use consensus_sweep::CellOutcome;

/// Encodes a cell-dispatch request line (no trailing newline).
#[must_use]
pub fn encode_request(cell: u64) -> String {
    format!("{{\"cell\": {cell}}}")
}

/// Encodes a success response line for `cell` (no trailing newline).
#[must_use]
pub fn encode_done(cell: u64, outcomes: &[CellOutcome]) -> String {
    let mut out = format!("{{\"cell\": {cell}, \"status\": \"done\", \"outcomes\": [");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let decision = o
            .decision_round
            .map_or("null".to_owned(), |d| d.to_string());
        out.push_str(&format!(
            "{{\"rate_bits\": \"{:016x}\", \"decision_round\": {decision}, \"rounds\": {}, \"converged\": {}, \"fingerprint\": \"{:016x}\"}}",
            o.rate.to_bits(),
            o.rounds,
            o.converged,
            o.fingerprint,
        ));
    }
    out.push_str("]}");
    out
}

/// Encodes a failure response line for `cell` (no trailing newline).
#[must_use]
pub fn encode_failed(cell: u64, error: &str) -> String {
    format!(
        "{{\"cell\": {cell}, \"status\": \"failed\", \"error\": \"{}\"}}",
        consensus_sweep::report::json_escape(error)
    )
}

/// A decoded worker response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The cell ran; its outcome rows, bit-exact.
    Done {
        /// The echoed cell index.
        cell: u64,
        /// The cell's outcome rows.
        outcomes: Vec<CellOutcome>,
    },
    /// The worker could not run the cell.
    Failed {
        /// The echoed cell index.
        cell: u64,
        /// The worker's error message.
        error: String,
    },
}

/// Decodes a request line; returns the cell index.
///
/// # Errors
///
/// Returns a description of the malformed line.
pub fn decode_request(line: &str) -> Result<u64, String> {
    let v = Json::parse(line)?;
    v.field("cell")?.as_u64()
}

/// Decodes a response line.
///
/// # Errors
///
/// Returns a description of the malformed line.
pub fn decode_response(line: &str) -> Result<Response, String> {
    let v = Json::parse(line)?;
    let cell = v.field("cell")?.as_u64()?;
    let status = v.field("status")?.as_str()?;
    match status {
        "done" => {
            let rows = v.field("outcomes")?.as_array()?;
            let mut outcomes = Vec::with_capacity(rows.len());
            for row in rows {
                outcomes.push(CellOutcome {
                    rate: f64::from_bits(row.field("rate_bits")?.as_hex_u64()?),
                    decision_round: match row.field("decision_round")? {
                        Json::Null => None,
                        other => Some(other.as_u64()?),
                    },
                    rounds: row.field("rounds")?.as_u64()?,
                    converged: row.field("converged")?.as_bool()?,
                    fingerprint: row.field("fingerprint")?.as_hex_u64()?,
                });
            }
            Ok(Response::Done { cell, outcomes })
        }
        "failed" => Ok(Response::Failed {
            cell,
            error: v.field("error")?.as_str()?.to_owned(),
        }),
        other => Err(format!("unknown response status {other:?}")),
    }
}

/// A minimal JSON value: just the shapes the worker protocol uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its source text so `u64`s never round-trip
    /// through `f64`.
    Num(String),
    /// A string literal (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (no hash maps — object
    /// sizes here are tiny and iteration order stays deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value spanning the whole input.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Errs when `self` is not an object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {name:?}")),
            _ => Err(format!("expected an object with field {name:?}")),
        }
    }

    /// The value as a `u64` (decimal).
    ///
    /// # Errors
    ///
    /// Errs when the value is not an unsigned decimal number.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(s) => s.parse().map_err(|_| format!("not a u64: {s:?}")),
            _ => Err("expected a number".to_owned()),
        }
    }

    /// The value as a `u64` parsed from a 16-digit hex string (the
    /// `rate_bits` / `fingerprint` encoding).
    ///
    /// # Errors
    ///
    /// Errs when the value is not a hex string.
    pub fn as_hex_u64(&self) -> Result<u64, String> {
        match self {
            Json::Str(s) => u64::from_str_radix(s, 16).map_err(|_| format!("not hex: {s:?}")),
            _ => Err("expected a hex string".to_owned()),
        }
    }

    /// The value as a borrowed string.
    ///
    /// # Errors
    ///
    /// Errs when the value is not a string.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err("expected a string".to_owned()),
        }
    }

    /// The value as a bool.
    ///
    /// # Errors
    ///
    /// Errs when the value is not a bool.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err("expected a bool".to_owned()),
        }
    }

    /// The value as a borrowed array.
    ///
    /// # Errors
    ///
    /// Errs when the value is not an array.
    pub fn as_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err("expected an array".to_owned()),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let val = parse_value(bytes, pos)?;
                pairs.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(format!("unexpected byte at offset {pos}"));
            }
            Ok(Json::Num(
                std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "non-UTF-8 number".to_owned())?
                    .to_owned(),
            ))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "non-UTF-8 string".to_owned());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(rate: f64) -> CellOutcome {
        CellOutcome {
            rate,
            decision_round: Some(12),
            rounds: 12,
            converged: true,
            fingerprint: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn request_round_trips() {
        assert_eq!(decode_request(&encode_request(7)).unwrap(), 7);
        assert_eq!(decode_request(" { \"cell\" : 123 } ").unwrap(), 123);
        assert!(decode_request("{\"cells\": 1}").is_err());
    }

    #[test]
    fn done_response_round_trips_bit_exactly() {
        let outcomes = vec![outcome(1.0 / 3.0), outcome(f64::NAN)];
        let line = encode_done(9, &outcomes);
        let Response::Done {
            cell,
            outcomes: got,
        } = decode_response(&line).unwrap()
        else {
            panic!("expected done");
        };
        assert_eq!(cell, 9);
        assert_eq!(got.len(), 2);
        for (a, b) in got.iter().zip(&outcomes) {
            assert_eq!(a.rate.to_bits(), b.rate.to_bits(), "rate crosses as bits");
            assert_eq!(a.decision_round, b.decision_round);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.converged, b.converged);
            assert_eq!(a.fingerprint, b.fingerprint);
        }
    }

    #[test]
    fn no_decision_encodes_as_null() {
        let mut o = outcome(0.5);
        o.decision_round = None;
        let line = encode_done(0, &[o]);
        assert!(line.contains("\"decision_round\": null"), "{line}");
        let Response::Done { outcomes, .. } = decode_response(&line).unwrap() else {
            panic!("expected done");
        };
        assert_eq!(outcomes[0].decision_round, None);
    }

    #[test]
    fn failed_response_round_trips_with_escapes() {
        let line = encode_failed(3, "panic: \"quoted\"\nsecond line");
        let Response::Failed { cell, error } = decode_response(&line).unwrap() else {
            panic!("expected failed");
        };
        assert_eq!(cell, 3);
        assert_eq!(error, "panic: \"quoted\"\nsecond line");
    }

    #[test]
    fn malformed_lines_err_cleanly() {
        assert!(decode_response("").is_err());
        assert!(decode_response("{").is_err());
        assert!(decode_response("{\"cell\": 1}").is_err(), "missing status");
        assert!(
            decode_response("{\"cell\": 1, \"status\": \"bogus\"}").is_err(),
            "unknown status"
        );
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
    }
}
