//! The `.sweepck` checkpoint file: an append-only record log that
//! survives a `SIGKILL` mid-write.
//!
//! ## Format
//!
//! ```text
//! magic  := b"SWEEPCK\n"                                  (8 bytes)
//! record := [len: u32 LE] [payload: len bytes] [fnv1a(payload): u64 LE]
//! ```
//!
//! The first record's payload is the **header** (tag `0x01`): format
//! version, grid/preset names, base seed, cell count, and rows per cell
//! — everything needed to refuse a resume against the wrong sweep.
//! Every later record is a **cell record** (tag `0x02`): the cell
//! index, its deterministic seed, a done/worker-failed status, and the
//! cell's outcomes with the rate stored as raw `f64::to_bits` — the
//! checkpoint round-trips outcomes *bit*-exactly, no decimal formatting
//! in the loop.
//!
//! ## Crash tolerance
//!
//! Records are appended (and flushed) one at a time, so the only damage
//! a `SIGKILL` can do is a **truncated final record**. [`load`]
//! therefore accepts a partial trailing record and reports the byte
//! offset where the valid prefix ends ([`LoadedCheckpoint::valid_len`]);
//! [`CheckpointWriter::append_to`] truncates the file back to that
//! offset before appending, so a resumed run never writes after garbage.
//! A record that is *complete* but fails its checksum is a different
//! story — that is corruption, not interruption — and is rejected with a
//! clean [`SweepError::Checkpoint`].
//!
//! Duplicate cell records are legal and **last-wins**: a resumed run
//! re-executes `WorkerFailed` cells and simply appends the fresh record.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

use consensus_sweep::{CellOutcome, SweepError};

/// The 8-byte file magic.
pub const MAGIC: &[u8; 8] = b"SWEEPCK\n";

/// The checkpoint format version written into the header record.
pub const FORMAT_VERSION: u32 = 1;

/// A record payload may not exceed this (anything larger in the length
/// prefix is corruption, not a real record).
const MAX_PAYLOAD: u32 = 16 << 20;

const TAG_HEADER: u8 = 0x01;
const TAG_CELL: u8 = 0x02;

/// FNV-1a over a byte slice — the per-record checksum.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The sweep identity a checkpoint belongs to. A resume refuses to
/// proceed unless every field matches the sweep being resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Registered grid name (`ensemble` | `multidim` | `dynamic_rates`).
    pub grid: String,
    /// Preset name within the grid (`golden`, `quick`, `full`, …).
    pub preset: String,
    /// The sweep's base seed (all cell seeds derive from it).
    pub base_seed: u64,
    /// Total number of grid cells.
    pub n_cells: u64,
    /// Outcome rows per cell (1 for most grids, 2 for `multidim`'s
    /// coordinatewise/simplex pair).
    pub rows_per_cell: u32,
}

/// Whether a cell's record holds real outcomes or a worker failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell executed and its outcomes are genuine measurements.
    Done,
    /// The cell's worker failed twice; the outcomes are `rows_per_cell`
    /// placeholder failures. A resume re-executes the cell.
    WorkerFailed,
}

/// One checkpointed cell: index, deterministic seed, status, outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell's grid index.
    pub cell: u64,
    /// The seed the cell ran with (`cell_seed(base_seed, cell)`).
    pub seed: u64,
    /// Done, or worker-failed (placeholder outcomes).
    pub status: CellStatus,
    /// The cell's outcome rows (`rows_per_cell` of them).
    pub outcomes: Vec<CellOutcome>,
}

impl CellRecord {
    /// Whether two records hold bit-identical outcomes (plain `==` on
    /// [`CellOutcome`] treats `NaN ≠ NaN`; checkpoint equality must
    /// not).
    #[must_use]
    pub fn bit_eq(&self, other: &CellRecord) -> bool {
        self.cell == other.cell
            && self.seed == other.seed
            && self.status == other.status
            && self.outcomes.len() == other.outcomes.len()
            && self.outcomes.iter().zip(&other.outcomes).all(|(a, b)| {
                a.rate.to_bits() == b.rate.to_bits()
                    && a.decision_round == b.decision_round
                    && a.rounds == b.rounds
                    && a.converged == b.converged
                    && a.fingerprint == b.fingerprint
            })
    }
}

/// The result of [`load`]: the header, every intact cell record in file
/// order, and how much of the file was valid.
#[derive(Debug, Clone)]
pub struct LoadedCheckpoint {
    /// The sweep identity the file was created for.
    pub header: CheckpointHeader,
    /// Every intact cell record, in append order (duplicates possible;
    /// see [`LoadedCheckpoint::latest_by_cell`]).
    pub records: Vec<CellRecord>,
    /// Byte length of the valid prefix (everything after it, if
    /// anything, was a truncated trailing record).
    pub valid_len: u64,
    /// Whether a truncated trailing record was dropped.
    pub dropped_tail: bool,
}

impl LoadedCheckpoint {
    /// The newest record per cell (last-wins), as one slot per grid
    /// cell.
    ///
    /// # Errors
    ///
    /// Rejects records whose cell index is out of the header's range.
    pub fn latest_by_cell(&self) -> Result<Vec<Option<CellRecord>>, SweepError> {
        let n = usize::try_from(self.header.n_cells)
            .map_err(|_| SweepError::checkpoint("cell count exceeds the address space"))?;
        let mut slots: Vec<Option<CellRecord>> = vec![None; n];
        for r in &self.records {
            let i = usize::try_from(r.cell)
                .ok()
                .filter(|&i| i < n)
                .ok_or_else(|| SweepError::Checkpoint {
                    cell: Some(r.cell),
                    message: format!("cell index out of range (grid has {n} cells)"),
                })?;
            slots[i] = Some(r.clone());
        }
        Ok(slots)
    }
}

// ---- little-endian encode/decode helpers -------------------------------

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A cursor over a payload being decoded; all reads are bounds-checked
/// so corrupt payloads fail cleanly instead of panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SweepError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SweepError::checkpoint("record payload shorter than its fields"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SweepError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SweepError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SweepError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, SweepError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SweepError::checkpoint("record string is not UTF-8"))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---- payload encoding --------------------------------------------------

fn encode_header(h: &CheckpointHeader) -> Vec<u8> {
    let mut p = Vec::new();
    p.push(TAG_HEADER);
    put_u32(&mut p, FORMAT_VERSION);
    put_u64(&mut p, h.base_seed);
    put_u64(&mut p, h.n_cells);
    put_u32(&mut p, h.rows_per_cell);
    put_str(&mut p, &h.grid);
    put_str(&mut p, &h.preset);
    p
}

fn decode_header(payload: &[u8]) -> Result<CheckpointHeader, SweepError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    if tag != TAG_HEADER {
        return Err(SweepError::checkpoint(format!(
            "first record has tag {tag:#04x}, expected a header"
        )));
    }
    let version = c.u32()?;
    if version != FORMAT_VERSION {
        return Err(SweepError::checkpoint(format!(
            "unsupported checkpoint format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let base_seed = c.u64()?;
    let n_cells = c.u64()?;
    let rows_per_cell = c.u32()?;
    let grid = c.string()?;
    let preset = c.string()?;
    if !c.done() {
        return Err(SweepError::checkpoint("header record has trailing bytes"));
    }
    Ok(CheckpointHeader {
        grid,
        preset,
        base_seed,
        n_cells,
        rows_per_cell,
    })
}

fn encode_cell(r: &CellRecord) -> Vec<u8> {
    let mut p = Vec::new();
    p.push(TAG_CELL);
    put_u64(&mut p, r.cell);
    put_u64(&mut p, r.seed);
    p.push(match r.status {
        CellStatus::Done => 0,
        CellStatus::WorkerFailed => 1,
    });
    put_u32(&mut p, r.outcomes.len() as u32);
    for o in &r.outcomes {
        put_u64(&mut p, o.rate.to_bits());
        match o.decision_round {
            Some(d) => {
                p.push(1);
                put_u64(&mut p, d);
            }
            None => {
                p.push(0);
                put_u64(&mut p, 0);
            }
        }
        put_u64(&mut p, o.rounds);
        p.push(u8::from(o.converged));
        put_u64(&mut p, o.fingerprint);
    }
    p
}

fn decode_cell(payload: &[u8]) -> Result<CellRecord, SweepError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    if tag != TAG_CELL {
        return Err(SweepError::checkpoint(format!(
            "unknown record tag {tag:#04x}"
        )));
    }
    let cell = c.u64()?;
    let seed = c.u64()?;
    let status = match c.u8()? {
        0 => CellStatus::Done,
        1 => CellStatus::WorkerFailed,
        s => {
            return Err(SweepError::Checkpoint {
                cell: Some(cell),
                message: format!("unknown cell status byte {s:#04x}"),
            })
        }
    };
    let n = c.u32()? as usize;
    let mut outcomes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let rate = f64::from_bits(c.u64()?);
        let has_decision = c.u8()? != 0;
        let decision = c.u64()?;
        let rounds = c.u64()?;
        let converged = c.u8()? != 0;
        let fingerprint = c.u64()?;
        outcomes.push(CellOutcome {
            rate,
            decision_round: has_decision.then_some(decision),
            rounds,
            converged,
            fingerprint,
        });
    }
    if !c.done() {
        return Err(SweepError::Checkpoint {
            cell: Some(cell),
            message: "cell record has trailing bytes".to_owned(),
        });
    }
    Ok(CellRecord {
        cell,
        seed,
        status,
        outcomes,
    })
}

// ---- load --------------------------------------------------------------

fn io_err(context: &str, e: &std::io::Error) -> SweepError {
    SweepError::checkpoint(format!("{context}: {e}"))
}

/// Loads a checkpoint file, tolerating a truncated trailing record (the
/// normal aftermath of a `SIGKILL` mid-append).
///
/// # Errors
///
/// Rejects unreadable files, a bad magic, an unsupported version, and
/// any *complete* record whose checksum or payload does not decode —
/// corruption is never silently skipped, only the partial tail is.
pub fn load(path: &Path) -> Result<LoadedCheckpoint, SweepError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(&format!("cannot read checkpoint {}", path.display()), &e))?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(SweepError::checkpoint(format!(
            "{} is not a sweep checkpoint (bad magic)",
            path.display()
        )));
    }

    let mut pos = MAGIC.len();
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut valid_len = pos;
    let mut dropped_tail = false;
    while pos < bytes.len() {
        // A record needs a 4-byte length, the payload, and an 8-byte
        // checksum; anything that runs past EOF is a truncated tail.
        if bytes.len() - pos < 4 {
            dropped_tail = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_PAYLOAD {
            return Err(SweepError::checkpoint(format!(
                "record at byte {pos} declares an impossible payload length {len}"
            )));
        }
        let len = len as usize;
        if bytes.len() - pos < 4 + len + 8 {
            dropped_tail = true;
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let stored = u64::from_le_bytes(
            bytes[pos + 4 + len..pos + 4 + len + 8]
                .try_into()
                .expect("8"),
        );
        if fnv1a(payload) != stored {
            return Err(SweepError::checkpoint(format!(
                "record at byte {pos} fails its checksum (stored {stored:#018x}, computed {:#018x})",
                fnv1a(payload)
            )));
        }
        payloads.push(payload.to_vec());
        pos += 4 + len + 8;
        valid_len = pos;
    }

    let Some((head, tail)) = payloads.split_first() else {
        return Err(SweepError::checkpoint(format!(
            "{} holds no complete header record",
            path.display()
        )));
    };
    let header = decode_header(head)?;
    let mut records = Vec::with_capacity(tail.len());
    for p in tail {
        records.push(decode_cell(p)?);
    }
    Ok(LoadedCheckpoint {
        header,
        records,
        valid_len: valid_len as u64,
        dropped_tail,
    })
}

// ---- write -------------------------------------------------------------

/// An open checkpoint being appended to. Every [`CheckpointWriter::append`]
/// writes one whole record and flushes it, so the file on disk always
/// ends with (at most) one partial record.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
}

impl CheckpointWriter {
    /// Creates (or truncates) `path` and writes the magic plus the
    /// header record.
    ///
    /// # Errors
    ///
    /// Surfaces I/O failures as [`SweepError::Checkpoint`].
    pub fn create(path: &Path, header: &CheckpointHeader) -> Result<Self, SweepError> {
        let mut file = File::create(path)
            .map_err(|e| io_err(&format!("cannot create checkpoint {}", path.display()), &e))?;
        file.write_all(MAGIC)
            .map_err(|e| io_err("cannot write checkpoint magic", &e))?;
        let mut w = CheckpointWriter { file };
        w.write_record(&encode_header(header))?;
        Ok(w)
    }

    /// Reopens an existing checkpoint for appending, first truncating
    /// it to `valid_len` (from [`load`]) so a partial trailing record
    /// from a kill never sits in front of new appends.
    ///
    /// # Errors
    ///
    /// Surfaces I/O failures as [`SweepError::Checkpoint`].
    pub fn append_to(path: &Path, valid_len: u64) -> Result<Self, SweepError> {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(&format!("cannot reopen checkpoint {}", path.display()), &e))?;
        file.set_len(valid_len)
            .map_err(|e| io_err("cannot drop the truncated checkpoint tail", &e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("cannot seek to the checkpoint tail", &e))?;
        Ok(CheckpointWriter { file })
    }

    /// Appends one cell record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Surfaces I/O failures as [`SweepError::Checkpoint`] carrying the
    /// cell index.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), SweepError> {
        self.write_record(&encode_cell(record))
            .map_err(|e| match e {
                SweepError::Checkpoint { message, .. } => SweepError::Checkpoint {
                    cell: Some(record.cell),
                    message,
                },
                other => other,
            })
    }

    fn write_record(&mut self, payload: &[u8]) -> Result<(), SweepError> {
        let mut buf = Vec::with_capacity(payload.len() + 12);
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(payload);
        put_u64(&mut buf, fnv1a(payload));
        self.file
            .write_all(&buf)
            .and_then(|()| self.file.flush())
            .map_err(|e| io_err("cannot append checkpoint record", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sweepck-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{name}-{}.sweepck", std::process::id()))
    }

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            grid: "ensemble".into(),
            preset: "golden".into(),
            base_seed: 42,
            n_cells: 4,
            rows_per_cell: 1,
        }
    }

    fn record(cell: u64) -> CellRecord {
        CellRecord {
            cell,
            seed: cell * 7 + 1,
            status: CellStatus::Done,
            outcomes: vec![CellOutcome {
                rate: 0.25 + cell as f64,
                decision_round: cell.is_multiple_of(2).then_some(cell + 3),
                rounds: cell + 10,
                converged: true,
                fingerprint: 0xABCD + cell,
            }],
        }
    }

    #[test]
    fn round_trips_header_and_records() {
        let path = tmp("roundtrip");
        let mut w = CheckpointWriter::create(&path, &header()).expect("create");
        for c in 0..4 {
            w.append(&record(c)).expect("append");
        }
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.header, header());
        assert_eq!(loaded.records.len(), 4);
        assert!(!loaded.dropped_tail);
        for (c, r) in loaded.records.iter().enumerate() {
            assert!(r.bit_eq(&record(c as u64)), "cell {c} round-trips");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nan_rates_round_trip_bit_exactly() {
        let path = tmp("nan");
        let mut w = CheckpointWriter::create(&path, &header()).expect("create");
        let mut r = record(0);
        r.outcomes[0].rate = f64::NAN;
        w.append(&r).expect("append");
        let loaded = load(&path).expect("load");
        assert_eq!(
            loaded.records[0].outcomes[0].rate.to_bits(),
            f64::NAN.to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_and_append_resumes_cleanly() {
        let path = tmp("tail");
        let mut w = CheckpointWriter::create(&path, &header()).expect("create");
        w.append(&record(0)).expect("append");
        w.append(&record(1)).expect("append");
        drop(w);
        let whole = std::fs::metadata(&path).expect("meta").len();
        // Chop into the middle of record 1 — a simulated mid-append kill.
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(whole - 5).expect("truncate");
        drop(f);

        let loaded = load(&path).expect("tolerates the partial tail");
        assert!(loaded.dropped_tail);
        assert_eq!(loaded.records.len(), 1, "only the intact record survives");
        assert!(loaded.records[0].bit_eq(&record(0)));

        // Appending after truncation must not leave garbage in between.
        let mut w = CheckpointWriter::append_to(&path, loaded.valid_len).expect("reopen");
        w.append(&record(1)).expect("append");
        w.append(&record(2)).expect("append");
        drop(w);
        let loaded = load(&path).expect("load");
        assert!(!loaded.dropped_tail);
        assert_eq!(loaded.records.len(), 3);
        assert!(loaded.records[2].bit_eq(&record(2)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_checksum_is_rejected_not_skipped() {
        let path = tmp("corrupt");
        let mut w = CheckpointWriter::create(&path, &header()).expect("create");
        w.append(&record(0)).expect("append");
        drop(w);
        // Flip one payload byte of the last record, leaving length and
        // checksum in place.
        let mut bytes = std::fs::read(&path).expect("read");
        let n = bytes.len();
        bytes[n - 20] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let err = load(&path).expect_err("corruption must not load");
        assert!(
            err.to_string().contains("checksum"),
            "clean checkpoint error, got: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_checkpoint_files_are_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"definitely not a checkpoint").expect("write");
        let err = load(&path).expect_err("bad magic");
        assert!(err.to_string().contains("bad magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn last_record_wins_per_cell() {
        let path = tmp("lastwins");
        let mut w = CheckpointWriter::create(&path, &header()).expect("create");
        let mut failed = record(2);
        failed.status = CellStatus::WorkerFailed;
        w.append(&failed).expect("append");
        w.append(&record(2)).expect("append");
        drop(w);
        let loaded = load(&path).expect("load");
        let slots = loaded.latest_by_cell().expect("in range");
        assert_eq!(slots.len(), 4);
        let latest = slots[2].as_ref().expect("cell 2 present");
        assert_eq!(
            latest.status,
            CellStatus::Done,
            "retry overrode the failure"
        );
        assert!(slots[0].is_none() && slots[1].is_none() && slots[3].is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_cells_are_rejected() {
        let path = tmp("range");
        let mut w = CheckpointWriter::create(&path, &header()).expect("create");
        w.append(&record(99)).expect("append");
        drop(w);
        let loaded = load(&path).expect("load");
        let err = loaded.latest_by_cell().expect_err("cell 99 of 4");
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
