//! The coordinator: walks a grid plan, dispatches cells to an executor
//! (in-process threads or spawned worker processes), streams every
//! completion to the checkpoint, and applies the retry policy.
//!
//! The control flow is deliberately thin — all the heavy lifting lives
//! in parts that are testable alone:
//!
//! ```text
//! plan + config
//!   └─ resume: load .sweepck, keep Done cells, re-queue the rest
//!   └─ dispatch: Sweep::try_run_where over the todo mask
//!        runner   = executor.run_cell, once retried, panics contained
//!        observer = checkpoint append + metrics, in completion order
//!   └─ merge: resumed records + fresh records, in cell order
//! ```
//!
//! **Determinism contract.** A cell's outcomes are a pure function of
//! `(grid, preset, base_seed, cell)` — the executor guarantees it, the
//! per-cell seeding enforces it — so the merged record vector is
//! identical whether the grid ran in one process, across twelve
//! workers, or in three separately-killed-and-resumed sessions. The CI
//! `resume-integrity` job checks exactly this, byte-for-byte, on the
//! aggregated JSON.
//!
//! **Failure policy.** An executor error (or panic) on a cell is
//! retried once; a second failure records the cell as
//! [`CellStatus::WorkerFailed`] with placeholder outcomes instead of
//! killing the sweep, and the failure message is surfaced in
//! [`RunOutcome::failed_cells`]. A later `--resume` re-executes exactly
//! the worker-failed cells.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

use consensus_pool::CancelToken;
use consensus_sweep::{CellOutcome, Sweep, SweepError};

use crate::checkpoint::{self, CellRecord, CellStatus, CheckpointHeader, CheckpointWriter};
use crate::metrics::Metrics;

/// Runs one grid cell. Implementations must be pure in the cell index:
/// the same cell always produces the same outcome rows, regardless of
/// thread, process, or how many times it is asked.
pub trait CellExecutor: Sync {
    /// Executes cell `cell` and returns its outcome rows.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of why the cell could not
    /// run (worker crash, transport failure, …). The coordinator
    /// retries once, then records `WorkerFailed`.
    fn run_cell(&self, cell: usize) -> Result<Vec<CellOutcome>, String>;
}

impl<F> CellExecutor for F
where
    F: Fn(usize) -> Result<Vec<CellOutcome>, String> + Sync,
{
    fn run_cell(&self, cell: usize) -> Result<Vec<CellOutcome>, String> {
        self(cell)
    }
}

/// The identity of the sweep being coordinated — what goes into the
/// checkpoint header and what a resume validates against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlan {
    /// Registered grid name.
    pub grid: String,
    /// Preset within the grid.
    pub preset: String,
    /// The sweep's base seed.
    pub base_seed: u64,
    /// Number of grid cells.
    pub n_cells: usize,
    /// Outcome rows per cell.
    pub rows_per_cell: usize,
}

impl SweepPlan {
    /// The checkpoint header this plan writes and validates.
    #[must_use]
    pub fn header(&self) -> CheckpointHeader {
        CheckpointHeader {
            grid: self.grid.clone(),
            preset: self.preset.clone(),
            base_seed: self.base_seed,
            n_cells: self.n_cells as u64,
            rows_per_cell: self.rows_per_cell as u32,
        }
    }
}

/// How to run the plan: parallelism, checkpointing, and early-stop.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Concurrent cell executions (0 ⇒ 1).
    pub threads: usize,
    /// Checkpoint file to stream completions to, if any.
    pub checkpoint: Option<PathBuf>,
    /// Whether to load an existing checkpoint at `checkpoint` and skip
    /// its `Done` cells (a missing file starts fresh).
    pub resume: bool,
    /// Stop dispatching after this many completions *this session*
    /// (a deterministic stand-in for an external kill in tests).
    pub stop_after: Option<u64>,
    /// External cancellation (signal handlers, metrics servers, …).
    pub cancel: CancelToken,
    /// Structured tracing: forwarded to the dispatch [`Sweep`] (cell
    /// spans, pool profile) plus a profile-class `coordinate` span with
    /// plan counters. Disabled by default; never affects results.
    pub trace: consensus_obs::TraceHandle,
}

/// What a coordinated run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// One slot per grid cell: the cell's record, or `None` when the
    /// run stopped before reaching it.
    pub records: Vec<Option<CellRecord>>,
    /// Cells satisfied from the checkpoint.
    pub resumed: usize,
    /// Cells executed this session.
    pub executed: usize,
    /// Whether every cell now has a record.
    pub completed: bool,
    /// `(cell, error)` for every cell recorded as `WorkerFailed` this
    /// session, ascending by cell.
    pub failed_cells: Vec<(u64, String)>,
}

impl RunOutcome {
    /// The outcome rows of a **completed** run, flattened in cell
    /// order (`rows_per_cell` rows per cell) — the exact input the
    /// in-process aggregation path consumes.
    #[must_use]
    pub fn outcome_rows(&self) -> Option<Vec<CellOutcome>> {
        if !self.completed {
            return None;
        }
        let mut rows = Vec::new();
        for r in &self.records {
            rows.extend(r.as_ref()?.outcomes.iter().copied());
        }
        Some(rows)
    }
}

/// Runs `plan` with `executor`, streaming completions to the checkpoint
/// and counters in `metrics`.
///
/// # Errors
///
/// * [`SweepError::Checkpoint`] — unreadable/corrupt checkpoint, a
///   header that does not match `plan`, or an append failure mid-run
///   (the run cancels and drains first).
/// * [`SweepError::CellsPanicked`] — only if the *observer machinery*
///   panics; executor panics are contained by the retry policy.
pub fn run(
    plan: &SweepPlan,
    cfg: &RunConfig,
    executor: &dyn CellExecutor,
    metrics: &Metrics,
) -> Result<RunOutcome, SweepError> {
    let header = plan.header();
    let mut slots: Vec<Option<CellRecord>> = vec![None; plan.n_cells];
    let mut writer: Option<Mutex<CheckpointWriter>> = None;

    if let Some(path) = &cfg.checkpoint {
        if cfg.resume && path.exists() {
            let loaded = checkpoint::load(path)?;
            if loaded.header != header {
                return Err(SweepError::checkpoint(format!(
                    "checkpoint {} was written by a different sweep \
                     (file: grid={} preset={} base_seed={} cells={} rows={}; \
                     expected: grid={} preset={} base_seed={} cells={} rows={})",
                    path.display(),
                    loaded.header.grid,
                    loaded.header.preset,
                    loaded.header.base_seed,
                    loaded.header.n_cells,
                    loaded.header.rows_per_cell,
                    header.grid,
                    header.preset,
                    header.base_seed,
                    header.n_cells,
                    header.rows_per_cell,
                )));
            }
            slots = loaded.latest_by_cell()?;
            writer = Some(Mutex::new(CheckpointWriter::append_to(
                path,
                loaded.valid_len,
            )?));
        } else {
            writer = Some(Mutex::new(CheckpointWriter::create(path, &header)?));
        }
    }

    // Done cells are settled; WorkerFailed cells get another chance
    // (their stale record stays in the file — last record wins).
    let todo: Vec<bool> = slots
        .iter()
        .map(|s| !matches!(s, Some(r) if r.status == CellStatus::Done))
        .collect();
    let resumed = todo.iter().filter(|t| !**t).count();
    metrics.set_plan(plan.n_cells as u64, resumed as u64);

    let io_error: Mutex<Option<SweepError>> = Mutex::new(None);
    let failed_cells: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let rows = plan.rows_per_cell;

    let mut coord_rec = cfg
        .trace
        .recorder(consensus_obs::PROFILE_SHARD, consensus_obs::lane::CONTROL);
    if let Some(rec) = &mut coord_rec {
        rec.record(consensus_obs::Event::span_begin("coordinate", 0).profile());
        rec.profile_counter("plan_cells", 0, plan.n_cells as u64);
        rec.profile_counter("plan_resumed", 0, resumed as u64);
    }

    let sweep = Sweep::new((0..plan.n_cells).collect::<Vec<usize>>())
        .seed(plan.base_seed)
        .threads(cfg.threads.max(1))
        .trace(cfg.trace.clone());
    let fresh = sweep.try_run_where(
        &todo,
        &cfg.cancel,
        |&i, ctx| {
            metrics.cell_started();
            let mut result = run_contained(executor, i, rows);
            if result.is_err() {
                metrics.retry();
                result = run_contained(executor, i, rows);
            }
            match result {
                Ok(outcomes) => CellRecord {
                    cell: i as u64,
                    seed: ctx.seed,
                    status: CellStatus::Done,
                    outcomes,
                },
                Err(message) => {
                    failed_cells
                        .lock()
                        .expect("failure list poisoned")
                        .push((i as u64, message));
                    CellRecord {
                        cell: i as u64,
                        seed: ctx.seed,
                        status: CellStatus::WorkerFailed,
                        outcomes: vec![CellOutcome::failed(0, 0); rows],
                    }
                }
            }
        },
        |_, record| {
            if let Some(w) = &writer {
                let appended = w.lock().expect("checkpoint writer poisoned").append(record);
                if let Err(e) = appended {
                    io_error
                        .lock()
                        .expect("error slot poisoned")
                        .get_or_insert(e);
                    cfg.cancel.cancel();
                }
            }
            metrics.cell_finished(record.status == CellStatus::WorkerFailed);
            if let Some(limit) = cfg.stop_after {
                if metrics.done() >= limit {
                    cfg.cancel.cancel();
                }
            }
        },
    );

    // Close and commit the coordinate span even when the dispatch
    // failed, so a partial trace still shows the coordinator phase.
    if let Some(mut rec) = coord_rec {
        rec.profile_counter("cells_done", 0, metrics.done());
        rec.record(consensus_obs::Event::span_end("coordinate", 0).profile());
        cfg.trace.commit(rec);
    }
    let fresh = fresh?;

    if let Some(e) = io_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }

    let mut executed = 0usize;
    for (i, record) in fresh.into_iter().enumerate() {
        if let Some(r) = record {
            slots[i] = Some(r);
            executed += 1;
        }
    }
    let completed = slots.iter().all(Option::is_some);
    let mut failed_cells = failed_cells.into_inner().expect("failure list poisoned");
    failed_cells.sort_unstable_by_key(|(c, _)| *c);
    Ok(RunOutcome {
        records: slots,
        resumed,
        executed,
        completed,
        failed_cells,
    })
}

/// One executor attempt with panics contained and row counts checked.
fn run_contained(
    executor: &dyn CellExecutor,
    cell: usize,
    rows: usize,
) -> Result<Vec<CellOutcome>, String> {
    let outcomes =
        catch_unwind(AssertUnwindSafe(|| executor.run_cell(cell))).unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(format!("cell {cell} panicked: {msg}"))
        })?;
    if outcomes.len() != rows {
        return Err(format!(
            "cell {cell} produced {} outcome rows, expected {rows}",
            outcomes.len()
        ));
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn plan(n: usize) -> SweepPlan {
        SweepPlan {
            grid: "ensemble".into(),
            preset: "unit".into(),
            base_seed: 42,
            n_cells: n,
            rows_per_cell: 1,
        }
    }

    /// A deterministic fake executor: outcomes derived from the index.
    fn fake_outcome(cell: usize) -> CellOutcome {
        CellOutcome {
            rate: 0.5 + cell as f64 / 100.0,
            decision_round: Some(cell as u64 + 1),
            rounds: cell as u64 + 1,
            converged: true,
            fingerprint: 0x1000 + cell as u64,
        }
    }

    fn fake_exec(cell: usize) -> Result<Vec<CellOutcome>, String> {
        Ok(vec![fake_outcome(cell)])
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("controlplane-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{name}-{}.sweepck", std::process::id()))
    }

    #[test]
    fn uncheckpointed_run_completes_in_cell_order() {
        let metrics = Metrics::new();
        let out = run(
            &plan(9),
            &RunConfig {
                threads: 3,
                ..RunConfig::default()
            },
            &fake_exec,
            &metrics,
        )
        .expect("run");
        assert!(out.completed);
        assert_eq!((out.resumed, out.executed), (0, 9));
        let rows = out.outcome_rows().expect("complete");
        assert_eq!(rows.len(), 9);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.fingerprint, 0x1000 + i as u64);
        }
        assert_eq!(metrics.snapshot(3).cells_done, 9);
    }

    #[test]
    fn stop_after_then_resume_is_bit_identical_to_fresh() {
        let path = tmp("stopresume");
        std::fs::remove_file(&path).ok();
        let metrics = Metrics::new();
        let partial = run(
            &plan(12),
            &RunConfig {
                threads: 2,
                checkpoint: Some(path.clone()),
                stop_after: Some(5),
                ..RunConfig::default()
            },
            &fake_exec,
            &metrics,
        )
        .expect("partial run");
        assert!(!partial.completed, "stopped early");
        assert!(partial.executed >= 5 && partial.executed < 12);

        let metrics2 = Metrics::new();
        let resumed = run(
            &plan(12),
            &RunConfig {
                threads: 4,
                checkpoint: Some(path.clone()),
                resume: true,
                ..RunConfig::default()
            },
            &fake_exec,
            &metrics2,
        )
        .expect("resumed run");
        assert!(resumed.completed);
        assert_eq!(resumed.resumed, partial.executed);
        assert_eq!(resumed.executed, 12 - partial.executed);

        let fresh = run(
            &plan(12),
            &RunConfig::default(),
            &fake_exec,
            &Metrics::new(),
        )
        .expect("fresh run");
        let a = resumed.outcome_rows().expect("complete");
        let b = fresh.outcome_rows().expect("complete");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rate.to_bits(), y.rate.to_bits());
            assert_eq!(x.fingerprint, y.fingerprint);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_mismatched_plan() {
        let path = tmp("mismatch");
        std::fs::remove_file(&path).ok();
        let _ = run(
            &plan(4),
            &RunConfig {
                checkpoint: Some(path.clone()),
                ..RunConfig::default()
            },
            &fake_exec,
            &Metrics::new(),
        )
        .expect("seed run");
        let mut other = plan(4);
        other.base_seed = 7;
        let err = run(
            &other,
            &RunConfig {
                checkpoint: Some(path.clone()),
                resume: true,
                ..RunConfig::default()
            },
            &fake_exec,
            &Metrics::new(),
        )
        .expect_err("different sweep");
        assert!(err.to_string().contains("different sweep"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flaky_cell_succeeds_on_retry() {
        let attempts = AtomicUsize::new(0);
        let exec = |cell: usize| {
            if cell == 3 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                return Err("transient".to_owned());
            }
            fake_exec(cell)
        };
        let metrics = Metrics::new();
        let out = run(&plan(6), &RunConfig::default(), &exec, &metrics).expect("run");
        assert!(out.completed);
        assert!(out.failed_cells.is_empty());
        assert_eq!(metrics.snapshot(1).retries, 1);
        assert_eq!(metrics.snapshot(1).cells_failed, 0);
        assert_eq!(
            out.records[3].as_ref().unwrap().status,
            CellStatus::Done,
            "retry rescued the cell"
        );
    }

    #[test]
    fn persistently_failing_cell_becomes_worker_failed_not_fatal() {
        let exec = |cell: usize| {
            if cell == 2 {
                return Err("dead worker".to_owned());
            }
            fake_exec(cell)
        };
        let metrics = Metrics::new();
        let out = run(&plan(5), &RunConfig::default(), &exec, &metrics).expect("run survives");
        assert!(out.completed, "one bad cell must not kill the sweep");
        let bad = out.records[2].as_ref().unwrap();
        assert_eq!(bad.status, CellStatus::WorkerFailed);
        assert_eq!(bad.outcomes.len(), 1);
        assert!(!bad.outcomes[0].converged);
        assert_eq!(out.failed_cells.len(), 1);
        assert_eq!(out.failed_cells[0].0, 2);
        assert!(out.failed_cells[0].1.contains("dead worker"));
        assert_eq!(metrics.snapshot(1).retries, 1);
        assert_eq!(metrics.snapshot(1).cells_failed, 1);
    }

    #[test]
    fn panicking_cell_is_contained_and_recorded() {
        let exec = |cell: usize| {
            assert!(cell != 1, "boom in cell {cell}");
            fake_exec(cell)
        };
        let out =
            run(&plan(4), &RunConfig::default(), &exec, &Metrics::new()).expect("panics contained");
        assert!(out.completed);
        assert_eq!(
            out.records[1].as_ref().unwrap().status,
            CellStatus::WorkerFailed
        );
        assert!(out.failed_cells[0].1.contains("panicked"));
    }

    #[test]
    fn resume_retries_worker_failed_cells() {
        let path = tmp("retryfailed");
        std::fs::remove_file(&path).ok();
        // First pass: cell 1 always fails → WorkerFailed record.
        let flaky = |cell: usize| {
            if cell == 1 {
                return Err("down".to_owned());
            }
            fake_exec(cell)
        };
        let first = run(
            &plan(4),
            &RunConfig {
                checkpoint: Some(path.clone()),
                ..RunConfig::default()
            },
            &flaky,
            &Metrics::new(),
        )
        .expect("first");
        assert_eq!(first.failed_cells.len(), 1);
        // Second pass (worker healthy again): only cell 1 re-runs.
        let metrics = Metrics::new();
        let second = run(
            &plan(4),
            &RunConfig {
                checkpoint: Some(path.clone()),
                resume: true,
                ..RunConfig::default()
            },
            &fake_exec,
            &metrics,
        )
        .expect("second");
        assert!(second.completed);
        assert_eq!(second.resumed, 3, "done cells stay settled");
        assert_eq!(second.executed, 1, "only the failed cell re-ran");
        assert_eq!(second.records[1].as_ref().unwrap().status, CellStatus::Done);
        // And the file now agrees (last record wins).
        let loaded = checkpoint::load(&path).expect("load");
        let slots = loaded.latest_by_cell().expect("in range");
        assert_eq!(slots[1].as_ref().unwrap().status, CellStatus::Done);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_coordinator_spans() {
        let trace = consensus_obs::TraceHandle::enabled();
        let traced = run(
            &plan(7),
            &RunConfig {
                threads: 3,
                trace: trace.clone(),
                ..RunConfig::default()
            },
            &fake_exec,
            &Metrics::new(),
        )
        .expect("traced run");
        let plain = run(&plan(7), &RunConfig::default(), &fake_exec, &Metrics::new())
            .expect("untraced run");
        let a = traced.outcome_rows().expect("complete");
        let b = plain.outcome_rows().expect("complete");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint, y.fingerprint, "tracing must not perturb");
        }
        let s = trace.merged();
        assert_eq!(s.events_for_span("coordinate").len(), 2);
        assert_eq!(s.events_for_span("cell").len(), 2 * 7);
        assert_eq!(s.counter_total("plan_cells"), 7);
        assert_eq!(s.counter_total("cells_done"), 7);
        assert!(
            s.content().events_for_span("coordinate").is_empty(),
            "coordinator spans are profile-class"
        );
    }

    #[test]
    fn external_cancel_leaves_a_resumable_checkpoint() {
        let path = tmp("cancel");
        std::fs::remove_file(&path).ok();
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = run(
            &plan(6),
            &RunConfig {
                checkpoint: Some(path.clone()),
                cancel: cancel.clone(),
                ..RunConfig::default()
            },
            &fake_exec,
            &Metrics::new(),
        )
        .expect("cancelled run still returns");
        assert!(!out.completed);
        assert_eq!(out.executed, 0);
        // The file holds a valid header and is resumable.
        let resumed = run(
            &plan(6),
            &RunConfig {
                checkpoint: Some(path.clone()),
                resume: true,
                ..RunConfig::default()
            },
            &fake_exec,
            &Metrics::new(),
        )
        .expect("resume");
        assert!(resumed.completed);
        std::fs::remove_file(&path).ok();
    }
}
