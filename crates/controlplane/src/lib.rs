//! # consensus-controlplane
//!
//! The checkpointed sweep control plane for the *Tight Bounds for
//! Asymptotic and Approximate Consensus* reproduction: turns the
//! in-process [`consensus_sweep::Sweep`] harness into a
//! one-laptop-or-fleet architecture — a coordinator that walks any
//! registered grid, dispatches cells to worker threads or spawned
//! worker processes, and streams every completed cell to an append-only
//! checkpoint so an interrupted run resumes **cell-exact** and
//! aggregates **bit-identically** to the uninterrupted path.
//!
//! * [`coordinator`] — the run loop: resume, dispatch, retry-once-then-
//!   [`WorkerFailed`](checkpoint::CellStatus::WorkerFailed), merge.
//! * [`checkpoint`] — the `.sweepck` file: length-prefixed, checksummed
//!   records; tolerant of the truncated tail a `SIGKILL` leaves behind.
//! * [`worker`] — spawned `sweep-worker` processes and their pool.
//! * [`protocol`] — the line-delimited JSON the worker pipe speaks,
//!   with rates crossing as raw `f64::to_bits` so no decimal formatting
//!   ever touches the data path.
//! * [`metrics`] — lock-free run counters, a deterministic JSON
//!   snapshot, and an optional live plaintext endpoint. No clocks in
//!   this crate: elapsed time is measured by the caller.
//!
//! ## Why determinism makes this easy
//!
//! Every sweep cell's outcome is a pure function of `(grid, preset,
//! base_seed, cell index)` — the per-cell seeding discipline the
//! harness has enforced since it existed. That single property is what
//! lets the control plane offer strong guarantees with simple
//! machinery: a checkpoint doesn't need to save RNG state mid-stream
//! (cells are atomic), resume doesn't need to replay a log (re-running
//! a cell gives the same bits), and process workers don't need sticky
//! assignment (any worker computes the same answer). The CI
//! `resume-integrity` job SIGKILLs a checkpointed golden sweep
//! mid-grid, resumes it at a different worker count, and diffs the
//! aggregate JSON byte-for-byte against the uninterrupted golden file.
//!
//! ## Quickstart
//!
//! ```
//! use consensus_controlplane::{
//!     coordinator::{self, RunConfig, SweepPlan},
//!     metrics::Metrics,
//! };
//! use consensus_sweep::CellOutcome;
//!
//! let plan = SweepPlan {
//!     grid: "demo".into(),
//!     preset: "unit".into(),
//!     base_seed: 7,
//!     n_cells: 8,
//!     rows_per_cell: 1,
//! };
//! let metrics = Metrics::new();
//! let exec = |cell: usize| -> Result<Vec<CellOutcome>, String> {
//!     Ok(vec![CellOutcome::of_rate(0.5 + cell as f64 / 100.0, 10)])
//! };
//! let out = coordinator::run(&plan, &RunConfig::default(), &exec, &metrics)
//!     .expect("coordinated run");
//! assert!(out.completed);
//! assert_eq!(out.outcome_rows().expect("complete").len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod coordinator;
pub mod metrics;
pub mod protocol;
pub mod worker;

pub use checkpoint::{
    CellRecord, CellStatus, CheckpointHeader, CheckpointWriter, LoadedCheckpoint,
};
pub use coordinator::{run, CellExecutor, RunConfig, RunOutcome, SweepPlan};
pub use metrics::{render_plaintext, serve_plaintext, Metrics, MetricsServer, MetricsSnapshot};
pub use worker::{ProcessPool, WorkerSpawn};
