//! Run metrics: lock-free counters updated by the coordinator and its
//! workers, snapshotted at end of run, optionally served live.
//!
//! Two deliberate restrictions keep the metrics layer inside the
//! repo's determinism rules:
//!
//! * **No clocks.** This crate never reads wall-clock time (detlint R3
//!   reserves that for `crates/bench`); throughput figures are computed
//!   from an elapsed time the *caller* measured — either passed into
//!   [`MetricsSnapshot::to_json`], or produced by the
//!   [`consensus_obs::Clock`] injected into [`serve_plaintext`] (a real
//!   clock in the `sweep` bin, the deterministic `NullClock`/`TickClock`
//!   in tests). With `elapsed_ms: None` the snapshot is a pure function
//!   of the run — byte-identical across re-runs — which is what lets
//!   tests assert on it.
//! * **No maps.** Counters are named struct fields; the plaintext
//!   rendering below iterates them in a fixed order.
//!
//! The live endpoint ([`serve_plaintext`]) is a minimal TCP responder
//! in the Prometheus text exposition style: connect, read the current
//! counter values, done. It exists for watching a long `--full` sweep
//! from another terminal (`curl`/`nc`), not for scraping fidelity.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use consensus_obs::{Clock, TraceHandle};
use consensus_pool::CancelToken;

/// Shared run counters. All methods are lock-free and callable from any
/// worker thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total cells in the grid.
    cells_total: AtomicU64,
    /// Cells satisfied from the checkpoint at startup.
    cells_resumed: AtomicU64,
    /// Cells completed by this run (including worker-failed ones).
    cells_done: AtomicU64,
    /// Cells recorded as `WorkerFailed` (failed twice).
    cells_failed: AtomicU64,
    /// Cell executions retried after a first failure.
    retries: AtomicU64,
    /// Worker processes respawned after dying mid-cell.
    worker_restarts: AtomicU64,
    /// Cells currently executing.
    in_flight: AtomicU64,
    /// High-water mark of `in_flight`.
    max_in_flight: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records the grid size and how many cells the checkpoint already
    /// covered.
    pub fn set_plan(&self, cells_total: u64, cells_resumed: u64) {
        self.cells_total.store(cells_total, Ordering::Relaxed);
        self.cells_resumed.store(cells_resumed, Ordering::Relaxed);
    }

    /// A cell began executing.
    pub fn cell_started(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    /// A cell finished (`failed` when it was recorded as
    /// `WorkerFailed`).
    pub fn cell_finished(&self, failed: bool) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.cells_done.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.cells_failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A cell execution failed once and is being retried.
    pub fn retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker process died and was (or will be) respawned.
    pub fn worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Cells completed by this run so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.cells_done.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the counters (individually atomic;
    /// the set is a point-in-time read, exact once the run has
    /// quiesced).
    #[must_use]
    pub fn snapshot(&self, workers: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            cells_total: self.cells_total.load(Ordering::Relaxed),
            cells_resumed: self.cells_resumed.load(Ordering::Relaxed),
            cells_done: self.cells_done.load(Ordering::Relaxed),
            cells_failed: self.cells_failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
            workers,
        }
    }
}

/// A point-in-time copy of every counter, plus the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Total cells in the grid.
    pub cells_total: u64,
    /// Cells satisfied from the checkpoint at startup.
    pub cells_resumed: u64,
    /// Cells completed by this run.
    pub cells_done: u64,
    /// Cells recorded as `WorkerFailed`.
    pub cells_failed: u64,
    /// Cell executions retried after a first failure.
    pub retries: u64,
    /// Worker processes respawned.
    pub worker_restarts: u64,
    /// Cells executing at snapshot time (0 once quiesced).
    pub in_flight: u64,
    /// High-water mark of concurrent cells.
    pub max_in_flight: u64,
    /// Configured worker count.
    pub workers: u64,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as stable 2-space-indented JSON.
    ///
    /// `elapsed_ms` is measured by the caller (this crate reads no
    /// clocks); when `None`, `elapsed_ms` and `cells_per_sec` are
    /// `null` and the output is fully deterministic.
    #[must_use]
    pub fn to_json(&self, elapsed_ms: Option<u64>) -> String {
        let (elapsed, rate) = match elapsed_ms {
            Some(ms) => {
                let secs = ms as f64 / 1000.0;
                let rate = if secs > 0.0 {
                    consensus_sweep::report::json_f64(self.cells_done as f64 / secs)
                } else {
                    "null".to_owned()
                };
                (ms.to_string(), rate)
            }
            None => ("null".to_owned(), "null".to_owned()),
        };
        format!(
            "{{\n  \"cells_total\": {},\n  \"cells_resumed\": {},\n  \"cells_done\": {},\n  \"cells_failed\": {},\n  \"retries\": {},\n  \"worker_restarts\": {},\n  \"max_in_flight\": {},\n  \"workers\": {},\n  \"elapsed_ms\": {elapsed},\n  \"cells_per_sec\": {rate}\n}}\n",
            self.cells_total,
            self.cells_resumed,
            self.cells_done,
            self.cells_failed,
            self.retries,
            self.worker_restarts,
            self.max_in_flight,
            self.workers,
        )
    }
}

/// Renders the live counters in the Prometheus text exposition style.
///
/// `workers` is the configured worker count and `elapsed_ms` the time
/// since the endpoint came up, both measured by the caller (this crate
/// reads no clocks). `elapsed_ms: None` omits the elapsed and
/// throughput lines entirely, keeping test output deterministic.
#[must_use]
pub fn render_plaintext(metrics: &Metrics, workers: u64, elapsed_ms: Option<u64>) -> String {
    let s = metrics.snapshot(workers);
    let mut out = format!(
        "sweep_cells_total {}\nsweep_cells_resumed {}\nsweep_cells_done {}\nsweep_cells_failed {}\nsweep_retries {}\nsweep_worker_restarts {}\nsweep_in_flight {}\nsweep_max_in_flight {}\nsweep_workers {}\n",
        s.cells_total,
        s.cells_resumed,
        s.cells_done,
        s.cells_failed,
        s.retries,
        s.worker_restarts,
        s.in_flight,
        s.max_in_flight,
        s.workers,
    );
    if let Some(ms) = elapsed_ms {
        out.push_str(&format!("sweep_elapsed_ms {ms}\n"));
        if ms > 0 {
            let rate = s.cells_done as f64 / (ms as f64 / 1000.0);
            out.push_str(&format!("sweep_cells_per_sec {rate:?}\n"));
        }
    }
    out
}

/// A running metrics endpoint; join it after cancelling its token.
#[derive(Debug)]
pub struct MetricsServer {
    /// The bound address (useful with `addr: "127.0.0.1:0"`).
    pub addr: SocketAddr,
    handle: JoinHandle<()>,
}

impl MetricsServer {
    /// Waits for the serving thread to exit (cancel the token first).
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

/// Serves [`render_plaintext`] on `addr` until `cancel` is raised: each
/// connection gets one snapshot and is closed. Binding `"…:0"` picks a
/// free port; the bound address is returned.
///
/// Elapsed time is measured by `clock` from the moment the listener
/// binds: a real clock (the `sweep` bin injects one) makes the
/// endpoint report live elapsed/throughput, while the deterministic
/// [`consensus_obs::NullClock`] omits those lines. When `trace` is
/// enabled, each response is followed by
/// [`consensus_obs::render_summary`] over the events committed so far.
///
/// # Errors
///
/// Returns the bind error, if any.
pub fn serve_plaintext(
    addr: &str,
    metrics: Arc<Metrics>,
    workers: u64,
    clock: Arc<dyn Clock>,
    trace: TraceHandle,
    cancel: CancelToken,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let started = clock.now_nanos();
    let handle = std::thread::spawn(move || {
        while !cancel.is_cancelled() {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let elapsed_ms = match (started, clock.now_nanos()) {
                        (Some(t0), Some(t1)) => Some(t1.saturating_sub(t0) / 1_000_000),
                        _ => None,
                    };
                    let mut body = render_plaintext(&metrics, workers, elapsed_ms);
                    if trace.is_enabled() {
                        body.push_str(&consensus_obs::render_summary(&trace.merged()));
                    }
                    let _ = stream.write_all(body.as_bytes());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(_) => break,
            }
        }
    });
    Ok(MetricsServer {
        addr: bound,
        handle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.set_plan(16, 4);
        m.cell_started();
        m.cell_started();
        m.cell_finished(false);
        m.cell_finished(true);
        m.retry();
        m.worker_restart();
        let s = m.snapshot(3);
        assert_eq!(s.cells_total, 16);
        assert_eq!(s.cells_resumed, 4);
        assert_eq!(s.cells_done, 2);
        assert_eq!(s.cells_failed, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.worker_restarts, 1);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.max_in_flight, 2);
        assert_eq!(s.workers, 3);
    }

    #[test]
    fn snapshot_json_without_elapsed_is_deterministic() {
        let m = Metrics::new();
        m.set_plan(8, 0);
        let a = m.snapshot(2).to_json(None);
        let b = m.snapshot(2).to_json(None);
        assert_eq!(a, b);
        assert!(a.contains("\"elapsed_ms\": null"));
        assert!(a.contains("\"cells_per_sec\": null"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn snapshot_json_with_elapsed_reports_throughput() {
        let m = Metrics::new();
        m.set_plan(4, 0);
        for _ in 0..4 {
            m.cell_started();
            m.cell_finished(false);
        }
        let json = m.snapshot(1).to_json(Some(2000));
        assert!(json.contains("\"elapsed_ms\": 2000"), "{json}");
        assert!(json.contains("\"cells_per_sec\": 2.0"), "{json}");
    }

    #[test]
    fn plaintext_endpoint_serves_current_counters() {
        use std::io::Read as _;
        let metrics = Arc::new(Metrics::new());
        metrics.set_plan(5, 1);
        let cancel = CancelToken::new();
        let server = serve_plaintext(
            "127.0.0.1:0",
            Arc::clone(&metrics),
            3,
            Arc::new(consensus_obs::NullClock),
            TraceHandle::disabled(),
            cancel.clone(),
        )
        .expect("bind a free port");
        let mut stream = std::net::TcpStream::connect(server.addr).expect("connect");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read");
        assert!(body.contains("sweep_cells_total 5"), "{body}");
        assert!(body.contains("sweep_cells_resumed 1"), "{body}");
        assert!(body.contains("sweep_workers 3"), "{body}");
        assert!(
            !body.contains("sweep_elapsed_ms"),
            "NullClock must omit elapsed: {body}"
        );
        cancel.cancel();
        server.join();
    }

    /// Regression: the endpoint used to render `snapshot(0)` with no
    /// elapsed time at all — workers was always 0 and elapsed always
    /// missing. An injected ticking clock must surface both.
    #[test]
    fn plaintext_endpoint_reports_elapsed_via_injected_clock() {
        use std::io::Read as _;
        let metrics = Arc::new(Metrics::new());
        metrics.set_plan(4, 0);
        for _ in 0..4 {
            metrics.cell_started();
            metrics.cell_finished(false);
        }
        // A deterministic clock that advances 5ms per reading, so the
        // first request already sees a non-zero elapsed time.
        struct MsClock(AtomicU64);
        impl Clock for MsClock {
            fn now_nanos(&self) -> Option<u64> {
                Some(self.0.fetch_add(5_000_000, Ordering::Relaxed))
            }
        }
        let clock = Arc::new(MsClock(AtomicU64::new(0)));
        let cancel = CancelToken::new();
        let server = serve_plaintext(
            "127.0.0.1:0",
            Arc::clone(&metrics),
            2,
            clock,
            TraceHandle::disabled(),
            cancel.clone(),
        )
        .expect("bind a free port");
        let mut stream = std::net::TcpStream::connect(server.addr).expect("connect");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read");
        assert!(body.contains("sweep_workers 2"), "{body}");
        assert!(body.contains("sweep_elapsed_ms "), "{body}");
        assert!(!body.contains("sweep_elapsed_ms 0\n"), "{body}");
        assert!(body.contains("sweep_cells_per_sec "), "{body}");
        cancel.cancel();
        server.join();
    }

    #[test]
    fn plaintext_endpoint_appends_trace_summary_when_enabled() {
        use std::io::Read as _;
        let metrics = Arc::new(Metrics::new());
        let trace = TraceHandle::enabled();
        let mut rec = trace.recorder(0, consensus_obs::lane::SWEEP).expect("on");
        rec.span_begin("cell", 0);
        rec.span_end("cell", 0);
        rec.counter("messages", 0, 7);
        trace.commit(rec);
        let cancel = CancelToken::new();
        let server = serve_plaintext(
            "127.0.0.1:0",
            Arc::clone(&metrics),
            1,
            Arc::new(consensus_obs::NullClock),
            trace,
            cancel.clone(),
        )
        .expect("bind a free port");
        let mut stream = std::net::TcpStream::connect(server.addr).expect("connect");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read");
        assert!(body.contains("obs_events 3"), "{body}");
        assert!(body.contains("obs_spans{name=\"cell\"} 1"), "{body}");
        assert!(body.contains("obs_counter{name=\"messages\"} 7"), "{body}");
        cancel.cancel();
        server.join();
    }

    #[test]
    fn render_plaintext_is_deterministic_without_elapsed() {
        let m = Metrics::new();
        m.set_plan(3, 1);
        assert_eq!(render_plaintext(&m, 4, None), render_plaintext(&m, 4, None));
        assert!(render_plaintext(&m, 4, Some(500)).contains("sweep_elapsed_ms 500"));
    }
}
