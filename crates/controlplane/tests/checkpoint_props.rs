//! Property tests for checkpoint robustness: round-trip bit-equality,
//! truncated-tail recovery at every byte offset, and resume-after-kill
//! bit-identity at randomized kill points.

use std::fs::OpenOptions;
use std::path::PathBuf;

use consensus_controlplane::checkpoint::{
    self, CellRecord, CellStatus, CheckpointHeader, CheckpointWriter,
};
use consensus_controlplane::coordinator::{self, RunConfig, SweepPlan};
use consensus_controlplane::metrics::Metrics;
use consensus_sweep::{cell_seed, CellOutcome};
use proptest::prelude::*;

fn tmp(name: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("sweepck-props");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}-{case}.sweepck", std::process::id()))
}

fn header(n_cells: u64, rows: u32) -> CheckpointHeader {
    CheckpointHeader {
        grid: "ensemble".into(),
        preset: "prop".into(),
        base_seed: 0x00C0_FFEE,
        n_cells,
        rows_per_cell: rows,
    }
}

/// A deterministic, bit-diverse record for `(cell, rows)`: rates span
/// normals, subnormals, and NaN so bit-equality is actually exercised.
fn record(cell: u64, rows: u32) -> CellRecord {
    let outcomes = (0..rows)
        .map(|r| {
            let k = cell * 31 + u64::from(r);
            CellOutcome {
                rate: match k % 4 {
                    0 => f64::NAN,
                    1 => f64::from_bits(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    2 => -0.0,
                    _ => 0.1 + k as f64 / 7.0,
                },
                decision_round: k.is_multiple_of(3).then_some(k + 5),
                rounds: k + 1,
                converged: !k.is_multiple_of(5),
                fingerprint: k.wrapping_mul(0xBF58_476D_1CE4_E5B9),
            }
        })
        .collect();
    CellRecord {
        cell,
        seed: cell_seed(0x00C0_FFEE, cell),
        status: if cell % 7 == 3 {
            CellStatus::WorkerFailed
        } else {
            CellStatus::Done
        },
        outcomes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write N records, reload, compare bit-for-bit.
    #[test]
    fn round_trip_is_bit_exact(n in 0u64..40, rows in 1u32..4, case in 0u64..u64::MAX) {
        let path = tmp("roundtrip", case);
        let mut w = CheckpointWriter::create(&path, &header(n.max(1), rows)).expect("create");
        for c in 0..n {
            w.append(&record(c, rows)).expect("append");
        }
        drop(w);
        let loaded = checkpoint::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.records.len() as u64, n);
        prop_assert!(!loaded.dropped_tail);
        for (c, r) in loaded.records.iter().enumerate() {
            prop_assert!(r.bit_eq(&record(c as u64, rows)), "cell {} differs", c);
        }
    }

    /// Truncate the file at *every possible* byte length: loading either
    /// fails cleanly (tail cut the header) or yields an intact prefix of
    /// the records, and appending after recovery heals the file.
    #[test]
    fn any_truncation_keeps_an_intact_prefix(cut_back in 1usize..200, case in 0u64..u64::MAX) {
        let n = 6u64;
        let path = tmp("trunc", case);
        let mut w = CheckpointWriter::create(&path, &header(n, 1)).expect("create");
        for c in 0..n {
            w.append(&record(c, 1)).expect("append");
        }
        drop(w);
        let whole = std::fs::metadata(&path).expect("meta").len() as usize;
        let cut = whole.saturating_sub(cut_back % whole);
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(cut as u64).expect("truncate");
        drop(f);

        match checkpoint::load(&path) {
            Err(_) => {
                // The cut reached into the magic/header — nothing to
                // resume, and the error is clean (no panic).
            }
            Ok(loaded) => {
                // Whatever survived is an intact, in-order prefix.
                prop_assert!(loaded.valid_len <= cut as u64);
                for (c, r) in loaded.records.iter().enumerate() {
                    prop_assert!(r.bit_eq(&record(c as u64, 1)), "prefix record {} intact", c);
                }
                // Recovery: truncate to valid_len, re-append the rest.
                let k = loaded.records.len() as u64;
                let mut w = CheckpointWriter::append_to(&path, loaded.valid_len).expect("reopen");
                for c in k..n {
                    w.append(&record(c, 1)).expect("append");
                }
                drop(w);
                let healed = checkpoint::load(&path).expect("healed file loads");
                prop_assert!(!healed.dropped_tail);
                prop_assert_eq!(healed.records.len() as u64, n);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Flip any single payload byte of a complete record: load must
    /// reject with a checkpoint error (never a panic, never silence).
    #[test]
    fn any_payload_corruption_is_rejected(victim in 0usize..1000, case in 0u64..u64::MAX) {
        let path = tmp("flip", case);
        let mut w = CheckpointWriter::create(&path, &header(4, 1)).expect("create");
        for c in 0..4 {
            w.append(&record(c, 1)).expect("append");
        }
        drop(w);
        let mut bytes = std::fs::read(&path).expect("read");
        // Only corrupt past the magic; flipping the magic is the
        // (also rejected) bad-magic case.
        let lo = checkpoint::MAGIC.len();
        let idx = lo + victim % (bytes.len() - lo);
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        let result = checkpoint::load(&path);
        std::fs::remove_file(&path).ok();
        // A flip in a length prefix can mimic truncation (record "runs
        // past EOF"), which legitimately loads a shorter prefix; any
        // flip inside a payload or checksum must be *rejected*.
        if let Ok(loaded) = result {
            prop_assert!(
                loaded.dropped_tail,
                "a corrupt load may only succeed by treating the damage as a truncated tail"
            );
            for (c, r) in loaded.records.iter().enumerate() {
                prop_assert!(r.bit_eq(&record(c as u64, 1)), "surviving record {} intact", c);
            }
        }
    }

    /// Kill the coordinator at a random point (deterministically, via
    /// stop_after), resume, and compare against an uninterrupted run:
    /// the merged outcome rows must be bit-identical.
    #[test]
    fn resume_after_kill_is_bit_identical(
        kill_at in 1u64..15,
        threads in 1usize..5,
        resume_threads in 1usize..5,
        case in 0u64..u64::MAX,
    ) {
        let n = 15usize;
        let plan = SweepPlan {
            grid: "ensemble".into(),
            preset: "prop".into(),
            base_seed: 0x00C0_FFEE,
            n_cells: n,
            rows_per_cell: 2,
        };
        let exec = |cell: usize| -> Result<Vec<CellOutcome>, String> {
            Ok(record(cell as u64, 2).outcomes)
        };
        let path = tmp("killpoint", case);
        std::fs::remove_file(&path).ok();

        let partial = coordinator::run(
            &plan,
            &RunConfig {
                threads,
                checkpoint: Some(path.clone()),
                stop_after: Some(kill_at),
                ..RunConfig::default()
            },
            &exec,
            &Metrics::new(),
        ).expect("partial");
        prop_assert!(partial.executed as u64 >= kill_at.min(n as u64));

        // Simulate the SIGKILL landing mid-append: chop a few bytes off
        // the tail before resuming.
        let len = std::fs::metadata(&path).expect("meta").len();
        if case.is_multiple_of(2) && len > 20 {
            let f = OpenOptions::new().write(true).open(&path).expect("open");
            f.set_len(len - 1 - case % 16).expect("truncate");
            drop(f);
        }

        let resumed = coordinator::run(
            &plan,
            &RunConfig {
                threads: resume_threads,
                checkpoint: Some(path.clone()),
                resume: true,
                ..RunConfig::default()
            },
            &exec,
            &Metrics::new(),
        ).expect("resume");
        std::fs::remove_file(&path).ok();
        prop_assert!(resumed.completed);

        let fresh = coordinator::run(&plan, &RunConfig::default(), &exec, &Metrics::new())
            .expect("fresh");
        let a = resumed.outcome_rows().expect("complete");
        let b = fresh.outcome_rows().expect("complete");
        prop_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert_eq!(x.rate.to_bits(), y.rate.to_bits(), "row {} rate", i);
            prop_assert_eq!(x.decision_round, y.decision_round, "row {} decision", i);
            prop_assert_eq!(x.rounds, y.rounds, "row {} rounds", i);
            prop_assert_eq!(x.converged, y.converged, "row {} converged", i);
            prop_assert_eq!(x.fingerprint, y.fingerprint, "row {} fingerprint", i);
        }
    }
}
