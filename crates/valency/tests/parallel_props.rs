//! Property tests for the pool-backed valency machinery: running probe
//! continuations or adversary candidate forks on the shared worker pool
//! is an implementation detail — at **every** thread count the
//! estimates, the chosen schedules, and the driven executions must be
//! bit-identical to the serial scan. This is the invariant that lets
//! the `adversary_search` grid pin one golden file regardless of the
//! machine it runs on.

use consensus_algorithms::{Midpoint, Point};
use consensus_digraph::Digraph;
use consensus_dynamics::Execution;
use consensus_netmodel::NetworkModel;
use consensus_valency::{adversary, ProbeSet};
use proptest::prelude::*;

/// Initial scalar values spread over `[0, 1]`, indexed by agent.
fn inits(n: usize, raw: &[f64]) -> Vec<Point<1>> {
    (0..n).map(|i| Point([raw[i % raw.len()]])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// **Pooled probes ≡ serial probes**: the deaf-continuation probe
    /// set over `deaf(K_n)` produces bit-identical limits, and the same
    /// convergence verdict, at thread counts 1, 2, 4, and 8.
    #[test]
    fn pooled_probe_estimates_match_serial(
        n in 3usize..6,
        raw in proptest::collection::vec(0.0f64..1.0, 6),
    ) {
        let model = NetworkModel::deaf(&Digraph::complete(n));
        let exec = Execution::new(Midpoint, &inits(n, &raw));
        let serial = ProbeSet::deaf_continuations(&model).estimate(&exec);
        for threads in [2, 4, 8] {
            let pooled = ProbeSet::deaf_continuations(&model)
                .threads(threads)
                .estimate(&exec);
            prop_assert_eq!(pooled.converged, serial.converged);
            prop_assert_eq!(pooled.limits.len(), serial.limits.len());
            for (p, s) in pooled.limits.iter().zip(serial.limits.iter()) {
                prop_assert_eq!(p[0].to_bits(), s[0].to_bits(), "threads={}", threads);
            }
        }
    }

    /// **Pooled adversary ≡ serial adversary**: the Theorem-2 greedy
    /// valency adversary driven with pooled candidate forks replays the
    /// serial schedule exactly — same δ̂ trace bits, same chosen
    /// candidates, same final agent outputs — at every thread count.
    #[test]
    fn pooled_adversary_drives_match_serial(
        n in 3usize..6,
        steps in 1usize..6,
        raw in proptest::collection::vec(0.0f64..1.0, 6),
    ) {
        let g = Digraph::complete(n);
        let start = inits(n, &raw);
        let mut serial_exec = Execution::new(Midpoint, &start);
        let serial = adversary::theorem2(&g).drive(&mut serial_exec, steps);
        for threads in [2, 4, 8] {
            let mut exec = Execution::new(Midpoint, &start);
            let trace = adversary::theorem2(&g).threads(threads).drive(&mut exec, steps);
            prop_assert_eq!(&trace.chosen, &serial.chosen, "threads={}", threads);
            prop_assert_eq!(trace.converged, serial.converged);
            for (a, b) in trace.deltas.iter().zip(serial.deltas.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in exec.outputs_slice().iter().zip(serial_exec.outputs_slice()) {
                prop_assert_eq!(a[0].to_bits(), b[0].to_bits());
            }
        }
    }
}
