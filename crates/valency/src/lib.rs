//! The valency-based lower-bound engine of the paper.
//!
//! §3 of *“Tight Bounds for Asymptotic and Approximate Consensus”*
//! (Függer, Nowak, Schwarz; PODC 2018) introduces the **valency** of a
//! configuration `C` of an asymptotic consensus algorithm:
//!
//! > `Y*_N(C) = { y*_E ∈ R^d | C occurs in E ∈ E^N_A }` — the set of
//! > limits reachable from `C`,
//!
//! and `δ_N(C) = diam(Y*_N(C))`. All lower bounds of the paper follow
//! one recipe: exhibit an adversary that, each (macro-)round, keeps
//! `δ(C_{t+1}) ≥ δ(C_t) / c`, which forces contraction rate ≥ `1/c`.
//!
//! This crate makes that recipe executable:
//!
//! * [`probe`] — **sound inner approximation** of `Y*(C)`: fork the
//!   execution, continue it with a finite family of probe patterns
//!   (constant graphs, eventually-deaf continuations, periodic
//!   `σ_i = Ψ_i^{n−2}` macro-patterns), and collect the limits. Every
//!   probe limit is a genuine element of `Y*(C)`, so the estimated
//!   diameter `δ̂(C) ≤ δ(C)` — the safe direction for *measuring* the
//!   adversary's guaranteed valency spread.
//! * [`adversary`] — the proof adversaries: [`adversary::theorem1`]
//!   (n = 2, rate ≥ 1/3), [`adversary::theorem2`] (deaf(G), rate ≥ 1/2),
//!   [`adversary::theorem3`] (Ψ model, rate ≥ `(1/2)^{1/(n−2)}`), and
//!   [`adversary::theorem5`] (any model, rate ≥ `1/(D+1)` via α-chains).
//! * [`checks`] — executable forms of Lemma 8 (initial valency diameter
//!   equals the initial value spread when every agent can be made deaf)
//!   and of the per-round invariants the proofs maintain.
//!
//! # Example
//!
//! ```
//! use consensus_algorithms::{Midpoint, Point};
//! use consensus_digraph::Digraph;
//! use consensus_dynamics::Execution;
//! use consensus_valency::adversary;
//!
//! // Theorem 2's adversary vs the midpoint algorithm on deaf(K_3):
//! // the valency diameter halves (and only halves) each round.
//! let adv = adversary::theorem2(&Digraph::complete(3));
//! let mut exec = Execution::new(Midpoint, &[Point([0.0]), Point([1.0]), Point([0.5])]);
//! let trace = adv.drive(&mut exec, 10);
//! let rate = trace.per_round_rate();
//! assert!((rate - 0.5).abs() < 0.02, "measured {rate}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod checks;
pub mod probe;

pub use adversary::{AdversaryTrace, GreedyValencyAdversary};
pub use probe::{ProbeFamily, ProbePattern, ProbeSet, ProbeTruncation, ValencyEstimate};
