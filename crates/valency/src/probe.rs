//! Sound inner approximation of valencies by probe continuations.

use consensus_algorithms::{diameter, Algorithm, Point};
use consensus_digraph::Digraph;
use consensus_dynamics::pattern::PatternSource;
use consensus_dynamics::{Execution, LimitEstimate};
use consensus_netmodel::NetworkModel;

/// A cyclic pattern over **borrowed** graphs: the probe loop hands out
/// refcount-bump clones of the probe set's own storage instead of
/// cloning the graph vector per probe run (the per-round adversary loop
/// stays allocation-free, matching the executor's inbox contract).
struct SliceCycle<'a> {
    graphs: &'a [Digraph],
    pos: usize,
}

impl PatternSource for SliceCycle<'_> {
    fn next_graph(&mut self, _round: u64) -> Digraph {
        let g = self.graphs[self.pos].clone();
        self.pos = (self.pos + 1) % self.graphs.len();
        g
    }
}

/// Which constructor produced a [`ProbeSet`] — emitted in bench labels
/// so golden rows are self-describing, and carried by truncation errors.
///
/// The interesting variant is [`ProbeFamily::DeafFallbackConstants`]:
/// [`ProbeSet::deaf_continuations`] on a model without any deaf graph
/// *silently* degrades to the generic constant family, which probes a
/// different (Theorem-5-style) quantity than the Lemma 7/8 arguments
/// expect. The fallback is still sound (`δ̂ ≤ δ`), but reports must say
/// it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeFamily {
    /// Explicit patterns via [`ProbeSet::new`].
    Explicit,
    /// `G^ω` for every graph of the model ([`ProbeSet::constants`]).
    Constants,
    /// Constant continuations of the model's deaf graphs
    /// ([`ProbeSet::deaf_continuations`], deaf graphs present).
    Deaf,
    /// [`ProbeSet::deaf_continuations`] found **no** deaf graph and fell
    /// back to the constant family.
    DeafFallbackConstants,
    /// The periodic `σ_i^ω` probes of §6 ([`ProbeSet::sigma_psi`]).
    SigmaPsi,
}

impl ProbeFamily {
    /// A short stable label for bench/golden rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProbeFamily::Explicit => "explicit",
            ProbeFamily::Constants => "constants",
            ProbeFamily::Deaf => "deaf",
            ProbeFamily::DeafFallbackConstants => "constants(deaf-fallback)",
            ProbeFamily::SigmaPsi => "sigma-psi",
        }
    }
}

/// A strict-mode probe failure: some probe pattern's spread never
/// reached the tolerance within the horizon, so its centroid is not a
/// certified reachable limit and the valency estimate would silently
/// under-approximate.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeTruncation {
    /// Index of the first truncated pattern (in [`ProbeSet::patterns`]
    /// order).
    pub pattern: usize,
    /// The family the probe set was built from.
    pub family: ProbeFamily,
    /// The probe horizon that expired.
    pub max_rounds: usize,
    /// The convergence tolerance that was not reached.
    pub tol: f64,
}

impl std::fmt::Display for ProbeTruncation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "probe {} of the {} family did not converge to tol {:e} within {} rounds: \
             its centroid is not a certified limit (raise max_rounds or drop strict mode)",
            self.pattern,
            self.family.label(),
            self.tol,
            self.max_rounds
        )
    }
}

impl std::error::Error for ProbeTruncation {}

/// One probe continuation: an eventually-periodic communication pattern
/// from the model, used to realise one reachable limit from a
/// configuration.
#[derive(Debug, Clone)]
pub enum ProbePattern {
    /// `G^ω` — the constant continuation.
    Constant(Digraph),
    /// `(G_1 … G_k)^ω` — a periodic continuation (e.g. `σ_i^ω` in §6).
    Periodic(Vec<Digraph>),
}

impl ProbePattern {
    fn limit<A, const D: usize>(
        &self,
        exec: &Execution<A, D>,
        tol: f64,
        max_rounds: usize,
    ) -> LimitEstimate<D>
    where
        A: Algorithm<D> + Clone,
    {
        let mut fork = exec.clone();
        let graphs: &[Digraph] = match self {
            ProbePattern::Constant(g) => std::slice::from_ref(g),
            ProbePattern::Periodic(gs) => gs,
        };
        let mut p = SliceCycle { graphs, pos: 0 };
        fork.limit_estimate(&mut p, tol, max_rounds)
    }
}

/// A finite family of probe continuations; the estimated valency of a
/// configuration is the set of their limits.
///
/// Soundness: every probe pattern is a legal continuation inside the
/// network model, so each limit is a true member of `Y*(C)` and the
/// estimated diameter `δ̂(C)` **never exceeds** the true `δ(C)`. The
/// per-theorem constructors choose exactly the continuations the paper's
/// proofs use, which is why `δ̂` tracks the proofs' quantities tightly.
///
/// # Convergence and strict mode
///
/// Each probe runs for at most `max_rounds` rounds. A probe whose
/// spread never falls below `tol` is *truncated*: its centroid is only
/// an approximation of the true reachable limit, and `δ̂` may
/// under-approximate what the probe family was meant to witness. By
/// default [`ProbeSet::estimate`] records this in
/// [`ValencyEstimate::converged`]; with [`ProbeSet::strict`] set,
/// truncation becomes a hard error ([`ProbeSet::try_estimate`] returns
/// [`ProbeTruncation`], and `estimate` panics with its message).
///
/// # Parallelism
///
/// With [`ProbeSet::threads`] > 1 the probe forks are dispatched onto
/// the shared `consensus-pool` executor. Limits are collected back **in
/// pattern index order**, so the resulting estimate is bit-for-bit
/// identical to the serial one at every thread count.
#[derive(Debug, Clone)]
pub struct ProbeSet {
    patterns: Vec<ProbePattern>,
    family: ProbeFamily,
    strict: bool,
    threads: usize,
    trace: consensus_obs::TraceHandle,
    trace_shard: u64,
    /// Convergence tolerance for probe runs.
    pub tol: f64,
    /// Probe horizon (rounds) — probes stop early on convergence.
    pub max_rounds: usize,
}

impl ProbeSet {
    /// Builds a probe set from explicit patterns.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty.
    #[must_use]
    pub fn new(patterns: Vec<ProbePattern>) -> Self {
        Self::with_family(patterns, ProbeFamily::Explicit)
    }

    fn with_family(patterns: Vec<ProbePattern>, family: ProbeFamily) -> Self {
        assert!(!patterns.is_empty(), "need at least one probe");
        ProbeSet {
            patterns,
            family,
            strict: false,
            threads: 1,
            trace: consensus_obs::TraceHandle::disabled(),
            trace_shard: 0,
            tol: 1e-12,
            max_rounds: 600,
        }
    }

    /// Attaches a [`consensus_obs::TraceHandle`]: every estimate
    /// commits per-probe `probe` spans plus `probe_rounds` /
    /// `probe_converged` counters on `(shard, lane::PROBE)`.
    ///
    /// Probe events are content-class — a pure function of the probed
    /// configuration — so a traced estimate is bit-identical at every
    /// [`ProbeSet::threads`] setting. Callers tracing **concurrent**
    /// estimates must give each call site its own `shard` (serial
    /// repeated estimates on one shard merge deterministically in call
    /// order).
    #[must_use]
    pub fn trace(mut self, trace: consensus_obs::TraceHandle, shard: u64) -> Self {
        self.trace = trace;
        self.trace_shard = shard;
        self
    }

    /// One constant probe `G^ω` per graph of the model — the generic
    /// family used with Theorem 5's adversary.
    #[must_use]
    pub fn constants(model: &NetworkModel) -> Self {
        Self::with_family(
            model
                .graphs()
                .iter()
                .cloned()
                .map(ProbePattern::Constant)
                .collect(),
            ProbeFamily::Constants,
        )
    }

    /// Constant probes for the graphs in which some agent is deaf — the
    /// family behind Lemma 7/Lemma 8 and Theorems 1 and 2. Falls back to
    /// all constants if no graph has a deaf agent; the fallback is
    /// recorded as [`ProbeFamily::DeafFallbackConstants`] in
    /// [`ProbeSet::family`] so reports can surface it.
    #[must_use]
    pub fn deaf_continuations(model: &NetworkModel) -> Self {
        let deaf: Vec<ProbePattern> = model
            .graphs()
            .iter()
            .filter(|g| (0..g.n()).any(|i| g.is_deaf(i)))
            .cloned()
            .map(ProbePattern::Constant)
            .collect();
        if deaf.is_empty() {
            let mut set = Self::constants(model);
            set.family = ProbeFamily::DeafFallbackConstants;
            set
        } else {
            Self::with_family(deaf, ProbeFamily::Deaf)
        }
    }

    /// The periodic probes `σ_i^ω = (Ψ_i^{n−2})^ω` of §6 for `n ≥ 4`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    #[must_use]
    pub fn sigma_psi(n: usize) -> Self {
        let probes = (0..3)
            .map(|i| {
                let psi = consensus_digraph::families::psi(n, i);
                ProbePattern::Periodic(vec![psi; n - 2])
            })
            .collect();
        Self::with_family(probes, ProbeFamily::SigmaPsi)
    }

    /// Makes truncated probes a hard error instead of a flag.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Dispatches probe forks onto `threads` pool workers (`0` means
    /// [`consensus_pool::default_threads`]; the default `1` runs
    /// serially in the caller's thread). Results are identical at every
    /// thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            consensus_pool::default_threads()
        } else {
            threads
        };
        self
    }

    /// Whether truncated probes are a hard error.
    #[must_use]
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// The constructor family this set was built from.
    #[must_use]
    pub fn family(&self) -> ProbeFamily {
        self.family
    }

    /// The probes in this set.
    #[must_use]
    pub fn patterns(&self) -> &[ProbePattern] {
        &self.patterns
    }

    /// Estimates the valency of the configuration held by `exec`
    /// (which is **not** advanced — probes run on forks).
    ///
    /// # Panics
    ///
    /// In strict mode ([`ProbeSet::strict`]), panics if any probe is
    /// truncated; use [`ProbeSet::try_estimate`] to handle the error.
    #[must_use]
    pub fn estimate<A, const D: usize>(&self, exec: &Execution<A, D>) -> ValencyEstimate<D>
    where
        A: Algorithm<D> + Clone + Sync,
        A::State: Sync,
        A::Msg: Sync,
    {
        match self.try_estimate(exec) {
            Ok(est) => est,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`ProbeSet::estimate`], but returns [`ProbeTruncation`]
    /// instead of panicking when strict mode rejects a truncated probe.
    /// Outside strict mode this never fails: truncation is reported via
    /// [`ValencyEstimate::converged`].
    pub fn try_estimate<A, const D: usize>(
        &self,
        exec: &Execution<A, D>,
    ) -> Result<ValencyEstimate<D>, ProbeTruncation>
    where
        A: Algorithm<D> + Clone + Sync,
        A::State: Sync,
        A::Msg: Sync,
    {
        let runs: Vec<LimitEstimate<D>> = if self.threads > 1 {
            consensus_pool::run_indexed(self.patterns.len(), self.threads, |i| {
                self.patterns[i].limit(exec, self.tol, self.max_rounds)
            })
        } else {
            self.patterns
                .iter()
                .map(|p| p.limit(exec, self.tol, self.max_rounds))
                .collect()
        };
        if let Some(mut rec) = self
            .trace
            .recorder(self.trace_shard, consensus_obs::lane::PROBE)
        {
            for (i, r) in runs.iter().enumerate() {
                let i = i as u64;
                rec.span_begin("probe", i);
                rec.counter("probe_rounds", i, r.rounds);
                rec.counter("probe_converged", i, u64::from(r.converged));
                rec.span_end("probe", i);
            }
            self.trace.commit(rec);
        }
        let truncated = runs.iter().position(|r| !r.converged);
        if self.strict {
            if let Some(pattern) = truncated {
                return Err(ProbeTruncation {
                    pattern,
                    family: self.family,
                    max_rounds: self.max_rounds,
                    tol: self.tol,
                });
            }
        }
        Ok(ValencyEstimate {
            limits: runs.iter().map(|r| r.point).collect(),
            converged: truncated.is_none(),
        })
    }
}

/// The estimated valency `Ŷ*(C)`: the limits realised by the probes.
#[derive(Debug, Clone)]
pub struct ValencyEstimate<const D: usize> {
    /// One reachable limit per probe pattern (same order).
    pub limits: Vec<Point<D>>,
    /// `true` iff **every** probe reached its tolerance within the
    /// horizon. When `false`, some entries of `limits` are truncated
    /// centroids and `δ̂` may under-approximate the family's witness.
    pub converged: bool,
}

impl<const D: usize> ValencyEstimate<D> {
    /// `δ̂(C) = diam(Ŷ*(C)) ≤ δ(C)`.
    #[must_use]
    pub fn diameter(&self) -> f64 {
        diameter(&self.limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_algorithms::{MeanValue, Midpoint, TwoAgentThirds};

    fn pts(vals: &[f64]) -> Vec<Point<1>> {
        vals.iter().map(|&v| Point([v])).collect()
    }

    #[test]
    fn two_agent_initial_valency_is_full_spread() {
        // Lemma 8: with H1 (agent 0 deaf) and H2 (agent 1 deaf) in the
        // model, δ(C_0) = Δ(y(0)).
        let model = NetworkModel::two_agent();
        let probes = ProbeSet::deaf_continuations(&model);
        let exec = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let est = probes.estimate(&exec);
        assert!((est.diameter() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deaf_probes_recover_agent_values_for_midpoint() {
        let model = NetworkModel::deaf(&Digraph::complete(3));
        let probes = ProbeSet::deaf_continuations(&model);
        let exec = Execution::new(Midpoint, &pts(&[0.0, 0.25, 1.0]));
        let est = probes.estimate(&exec);
        // Under F_i^ω the midpoint system converges to y_i(0).
        let mut limits: Vec<f64> = est.limits.iter().map(|p| p[0]).collect();
        limits.sort_by(f64::total_cmp);
        assert!((limits[0] - 0.0).abs() < 1e-9);
        assert!((limits[1] - 0.25).abs() < 1e-9);
        assert!((limits[2] - 1.0).abs() < 1e-9);
        assert!((est.diameter() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probe_does_not_advance_the_execution() {
        let model = NetworkModel::two_agent();
        let probes = ProbeSet::constants(&model);
        let exec = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        let before = exec.outputs();
        let _ = probes.estimate(&exec);
        assert_eq!(exec.outputs(), before);
        assert_eq!(exec.round(), 0);
    }

    #[test]
    fn probe_loop_hands_out_refcount_clones_not_deep_copies() {
        // The allocation contract of the per-round adversary loop: the
        // probe pattern source must emit copy-on-write clones of the
        // probe set's own graph storage, never fresh mask vectors.
        let graphs = vec![Digraph::complete(5), Digraph::complete(5).make_deaf(0)];
        let mut cyc = SliceCycle {
            graphs: &graphs,
            pos: 0,
        };
        for round in 0..6u64 {
            let emitted = cyc.next_graph(round);
            assert!(
                emitted.shares_storage(&graphs[(round as usize) % graphs.len()]),
                "round {round}: probe graph must share storage with the probe set"
            );
        }
    }

    #[test]
    fn estimates_shrink_along_contraction() {
        // δ̂ is monotone along midpoint rounds on the clique.
        let model = NetworkModel::deaf(&Digraph::complete(3));
        let probes = ProbeSet::deaf_continuations(&model);
        let mut exec = Execution::new(MeanValue, &pts(&[0.0, 1.0, 0.5]));
        let d0 = probes.estimate(&exec).diameter();
        exec.step(&Digraph::complete(3));
        let d1 = probes.estimate(&exec).diameter();
        assert!(d1 <= d0 + 1e-12);
    }

    #[test]
    fn sigma_probes_exist_and_converge() {
        let n = 5;
        let probes = ProbeSet::sigma_psi(n);
        assert_eq!(probes.patterns().len(), 3);
        assert_eq!(probes.family(), ProbeFamily::SigmaPsi);
        let alg = consensus_algorithms::AmortizedMidpoint::for_agents(n);
        let exec = Execution::new(alg, &pts(&[0.0, 1.0, 0.3, 0.8, 0.5]));
        let est = probes.estimate(&exec);
        assert!(est.converged, "σ-probes converge within the horizon");
        assert!(est.diameter() > 0.0, "distinct σ-limits witness valency");
        assert!(
            est.diameter() <= 1.0 + 1e-9,
            "validity keeps limits in hull"
        );
    }

    #[test]
    fn deaf_fallback_is_recorded_not_silent() {
        // A model with no deaf graph: the deaf family silently degraded
        // to constants before; now the degradation is labelled.
        let model = NetworkModel::singleton(Digraph::complete(3));
        let probes = ProbeSet::deaf_continuations(&model);
        assert_eq!(probes.family(), ProbeFamily::DeafFallbackConstants);
        assert_eq!(probes.family().label(), "constants(deaf-fallback)");
        // And a model *with* deaf graphs keeps the honest label.
        let deaf_model = NetworkModel::deaf(&Digraph::complete(3));
        assert_eq!(
            ProbeSet::deaf_continuations(&deaf_model).family(),
            ProbeFamily::Deaf
        );
    }

    #[test]
    fn strict_mode_errors_on_truncation() {
        // An empty graph (self-loops only) keeps both agents frozen at
        // their initial values: spread 1.0 forever, never below tol.
        let frozen = Digraph::try_empty(2).unwrap();
        let mut probes = ProbeSet::new(vec![ProbePattern::Constant(frozen)]).strict();
        probes.max_rounds = 25;
        let exec = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        let err = probes.try_estimate(&exec).unwrap_err();
        assert_eq!(err.pattern, 0);
        assert_eq!(err.family, ProbeFamily::Explicit);
        assert_eq!(err.max_rounds, 25);
        let msg = err.to_string();
        assert!(msg.contains("did not converge"), "got: {msg}");
        // Non-strict: same probes, flag instead of error.
        let mut lax = ProbeSet::new(probes.patterns().to_vec());
        lax.max_rounds = 25;
        let est = lax.estimate(&exec);
        assert!(!est.converged);
        assert!((est.diameter() - 0.0).abs() < 1e-12, "single probe: δ̂ = 0");
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn strict_estimate_panics_on_truncation() {
        let frozen = Digraph::try_empty(2).unwrap();
        let mut probes = ProbeSet::new(vec![ProbePattern::Constant(frozen)]).strict();
        probes.max_rounds = 25;
        let exec = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        let _ = probes.estimate(&exec);
    }

    #[test]
    fn pooled_probes_match_serial_bit_for_bit() {
        let model = NetworkModel::deaf(&Digraph::complete(4));
        let serial = ProbeSet::deaf_continuations(&model);
        let exec = Execution::new(Midpoint, &pts(&[0.0, 0.4, 0.7, 1.0]));
        let want = serial.estimate(&exec);
        for threads in [2, 4, 8] {
            let pooled = ProbeSet::deaf_continuations(&model).threads(threads);
            let got = pooled.estimate(&exec);
            assert_eq!(got.converged, want.converged);
            assert_eq!(got.limits.len(), want.limits.len());
            for (a, b) in got.limits.iter().zip(want.limits.iter()) {
                for d in 0..1 {
                    assert_eq!(a[d].to_bits(), b[d].to_bits(), "threads={threads}");
                }
            }
        }
    }
}
