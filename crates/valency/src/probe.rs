//! Sound inner approximation of valencies by probe continuations.

use consensus_algorithms::{diameter, Algorithm, Point};
use consensus_digraph::Digraph;
use consensus_dynamics::pattern::{ConstantPattern, PeriodicPattern};
use consensus_dynamics::Execution;
use consensus_netmodel::NetworkModel;

/// One probe continuation: an eventually-periodic communication pattern
/// from the model, used to realise one reachable limit from a
/// configuration.
#[derive(Debug, Clone)]
pub enum ProbePattern {
    /// `G^ω` — the constant continuation.
    Constant(Digraph),
    /// `(G_1 … G_k)^ω` — a periodic continuation (e.g. `σ_i^ω` in §6).
    Periodic(Vec<Digraph>),
}

impl ProbePattern {
    fn limit<A, const D: usize>(
        &self,
        exec: &Execution<A, D>,
        tol: f64,
        max_rounds: usize,
    ) -> Point<D>
    where
        A: Algorithm<D> + Clone,
    {
        let mut fork = exec.clone();
        match self {
            ProbePattern::Constant(g) => {
                let mut p = ConstantPattern::new(g.clone());
                fork.limit_estimate(&mut p, tol, max_rounds)
            }
            ProbePattern::Periodic(gs) => {
                let mut p = PeriodicPattern::new(gs.clone());
                fork.limit_estimate(&mut p, tol, max_rounds)
            }
        }
    }
}

/// A finite family of probe continuations; the estimated valency of a
/// configuration is the set of their limits.
///
/// Soundness: every probe pattern is a legal continuation inside the
/// network model, so each limit is a true member of `Y*(C)` and the
/// estimated diameter `δ̂(C)` **never exceeds** the true `δ(C)`. The
/// per-theorem constructors choose exactly the continuations the paper's
/// proofs use, which is why `δ̂` tracks the proofs' quantities tightly.
#[derive(Debug, Clone)]
pub struct ProbeSet {
    patterns: Vec<ProbePattern>,
    /// Convergence tolerance for probe runs.
    pub tol: f64,
    /// Probe horizon (rounds) — probes stop early on convergence.
    pub max_rounds: usize,
}

impl ProbeSet {
    /// Builds a probe set from explicit patterns.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty.
    #[must_use]
    pub fn new(patterns: Vec<ProbePattern>) -> Self {
        assert!(!patterns.is_empty(), "need at least one probe");
        ProbeSet {
            patterns,
            tol: 1e-12,
            max_rounds: 600,
        }
    }

    /// One constant probe `G^ω` per graph of the model — the generic
    /// family used with Theorem 5's adversary.
    #[must_use]
    pub fn constants(model: &NetworkModel) -> Self {
        Self::new(
            model
                .graphs()
                .iter()
                .cloned()
                .map(ProbePattern::Constant)
                .collect(),
        )
    }

    /// Constant probes for the graphs in which some agent is deaf — the
    /// family behind Lemma 7/Lemma 8 and Theorems 1 and 2. Falls back to
    /// all constants if no graph has a deaf agent.
    #[must_use]
    pub fn deaf_continuations(model: &NetworkModel) -> Self {
        let deaf: Vec<ProbePattern> = model
            .graphs()
            .iter()
            .filter(|g| (0..g.n()).any(|i| g.is_deaf(i)))
            .cloned()
            .map(ProbePattern::Constant)
            .collect();
        if deaf.is_empty() {
            Self::constants(model)
        } else {
            Self::new(deaf)
        }
    }

    /// The periodic probes `σ_i^ω = (Ψ_i^{n−2})^ω` of §6 for `n ≥ 4`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    #[must_use]
    pub fn sigma_psi(n: usize) -> Self {
        let probes = (0..3)
            .map(|i| {
                let psi = consensus_digraph::families::psi(n, i);
                ProbePattern::Periodic(vec![psi; n - 2])
            })
            .collect();
        Self::new(probes)
    }

    /// The probes in this set.
    #[must_use]
    pub fn patterns(&self) -> &[ProbePattern] {
        &self.patterns
    }

    /// Estimates the valency of the configuration held by `exec`
    /// (which is **not** advanced — probes run on forks).
    #[must_use]
    pub fn estimate<A, const D: usize>(&self, exec: &Execution<A, D>) -> ValencyEstimate<D>
    where
        A: Algorithm<D> + Clone,
    {
        let limits = self
            .patterns
            .iter()
            .map(|p| p.limit(exec, self.tol, self.max_rounds))
            .collect();
        ValencyEstimate { limits }
    }
}

/// The estimated valency `Ŷ*(C)`: the limits realised by the probes.
#[derive(Debug, Clone)]
pub struct ValencyEstimate<const D: usize> {
    /// One reachable limit per probe pattern (same order).
    pub limits: Vec<Point<D>>,
}

impl<const D: usize> ValencyEstimate<D> {
    /// `δ̂(C) = diam(Ŷ*(C)) ≤ δ(C)`.
    #[must_use]
    pub fn diameter(&self) -> f64 {
        diameter(&self.limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_algorithms::{MeanValue, Midpoint, TwoAgentThirds};

    fn pts(vals: &[f64]) -> Vec<Point<1>> {
        vals.iter().map(|&v| Point([v])).collect()
    }

    #[test]
    fn two_agent_initial_valency_is_full_spread() {
        // Lemma 8: with H1 (agent 0 deaf) and H2 (agent 1 deaf) in the
        // model, δ(C_0) = Δ(y(0)).
        let model = NetworkModel::two_agent();
        let probes = ProbeSet::deaf_continuations(&model);
        let exec = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let est = probes.estimate(&exec);
        assert!((est.diameter() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deaf_probes_recover_agent_values_for_midpoint() {
        let model = NetworkModel::deaf(&Digraph::complete(3));
        let probes = ProbeSet::deaf_continuations(&model);
        let exec = Execution::new(Midpoint, &pts(&[0.0, 0.25, 1.0]));
        let est = probes.estimate(&exec);
        // Under F_i^ω the midpoint system converges to y_i(0).
        let mut limits: Vec<f64> = est.limits.iter().map(|p| p[0]).collect();
        limits.sort_by(f64::total_cmp);
        assert!((limits[0] - 0.0).abs() < 1e-9);
        assert!((limits[1] - 0.25).abs() < 1e-9);
        assert!((limits[2] - 1.0).abs() < 1e-9);
        assert!((est.diameter() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probe_does_not_advance_the_execution() {
        let model = NetworkModel::two_agent();
        let probes = ProbeSet::constants(&model);
        let exec = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        let before = exec.outputs();
        let _ = probes.estimate(&exec);
        assert_eq!(exec.outputs(), before);
        assert_eq!(exec.round(), 0);
    }

    #[test]
    fn estimates_shrink_along_contraction() {
        // δ̂ is monotone along midpoint rounds on the clique.
        let model = NetworkModel::deaf(&Digraph::complete(3));
        let probes = ProbeSet::deaf_continuations(&model);
        let mut exec = Execution::new(MeanValue, &pts(&[0.0, 1.0, 0.5]));
        let d0 = probes.estimate(&exec).diameter();
        exec.step(&Digraph::complete(3));
        let d1 = probes.estimate(&exec).diameter();
        assert!(d1 <= d0 + 1e-12);
    }

    #[test]
    fn sigma_probes_exist_and_converge() {
        let n = 5;
        let probes = ProbeSet::sigma_psi(n);
        assert_eq!(probes.patterns().len(), 3);
        let alg = consensus_algorithms::AmortizedMidpoint::for_agents(n);
        let exec = Execution::new(alg, &pts(&[0.0, 1.0, 0.3, 0.8, 0.5]));
        let est = probes.estimate(&exec);
        assert!(est.diameter() > 0.0, "distinct σ-limits witness valency");
        assert!(
            est.diameter() <= 1.0 + 1e-9,
            "validity keeps limits in hull"
        );
    }
}
