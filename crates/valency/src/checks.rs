//! Executable forms of the paper's valency lemmas.

use consensus_algorithms::{diameter, Algorithm, Point};
use consensus_dynamics::Execution;
use consensus_netmodel::NetworkModel;

use crate::probe::ProbeSet;

/// **Lemma 8**: if for every agent `i` the model contains a graph in
/// which `i` is deaf, then every initial configuration satisfies
/// `δ(C_0) = Δ(y(0))`.
///
/// Returns `(δ̂(C_0), Δ(y(0)))` computed with the deaf-continuation
/// probes; the caller asserts closeness. Requires
/// [`NetworkModel::every_agent_deaf_somewhere`].
///
/// # Panics
///
/// Panics if some agent is never deaf in the model (the lemma's
/// hypothesis).
#[must_use]
pub fn lemma8_initial_valency<A, const D: usize>(
    alg: A,
    model: &NetworkModel,
    inits: &[Point<D>],
) -> (f64, f64)
where
    A: Algorithm<D> + Clone + Sync,
    A::State: Sync,
    A::Msg: Sync,
{
    assert!(
        model.every_agent_deaf_somewhere(),
        "Lemma 8 needs every agent deaf in some graph of N"
    );
    let exec = Execution::new(alg, inits);
    let probes = ProbeSet::deaf_continuations(model);
    let est = probes.estimate(&exec);
    (est.diameter(), diameter(inits))
}

/// **Lemma 3 (iii)** specialised to probes: restricting the model can
/// only shrink the estimated valency diameter. Returns
/// `(δ̂_sub(C_0), δ̂_full(C_0))`.
///
/// # Panics
///
/// Panics if `sub` is not a subset of `full`.
#[must_use]
pub fn lemma3_monotonicity<A, const D: usize>(
    alg: A,
    full: &NetworkModel,
    sub: &NetworkModel,
    inits: &[Point<D>],
) -> (f64, f64)
where
    A: Algorithm<D> + Clone + Sync,
    A::State: Sync,
    A::Msg: Sync,
{
    assert!(
        sub.graphs().iter().all(|g| full.contains(g)),
        "sub-model must be included in the full model"
    );
    let exec = Execution::new(alg, inits);
    let d_sub = ProbeSet::constants(sub).estimate(&exec).diameter();
    let d_full = ProbeSet::constants(full).estimate(&exec).diameter();
    (d_sub, d_full)
}

/// **Lemma 7** specialised to the deaf model: the valencies of two
/// successor configurations `F_i.C` and `F_j.C` intersect (they share
/// the limit reached by making a third agent `ℓ` deaf forever).
///
/// Returns the distance between the two `F_ℓ^ω`-limits — the proof says
/// it must be ~0.
///
/// # Panics
///
/// Panics if the agents are not distinct or out of range.
#[must_use]
pub fn lemma7_intersection<A, const D: usize>(
    alg: A,
    g: &consensus_digraph::Digraph,
    inits: &[Point<D>],
    i: usize,
    j: usize,
    ell: usize,
) -> f64
where
    A: Algorithm<D> + Clone + Sync,
    A::State: Sync,
    A::Msg: Sync,
{
    let n = g.n();
    assert!(i < n && j < n && ell < n && i != j && ell != i && ell != j);
    let fi = g.make_deaf(i);
    let fj = g.make_deaf(j);
    let fl = g.make_deaf(ell);
    let probes = ProbeSet::new(vec![crate::probe::ProbePattern::Constant(fl)]);

    let mut ei = Execution::new(alg.clone(), inits);
    ei.step(&fi);
    let li = probes.estimate(&ei).limits[0];

    let mut ej = Execution::new(alg, inits);
    ej.step(&fj);
    let lj = probes.estimate(&ej).limits[0];

    li.dist(&lj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_algorithms::{MeanValue, Midpoint, TwoAgentThirds, WindowedMidpoint};
    use consensus_digraph::Digraph;

    fn pts(vals: &[f64]) -> Vec<Point<1>> {
        vals.iter().map(|&v| Point([v])).collect()
    }

    #[test]
    fn lemma8_holds_for_deaf_models() {
        let model = NetworkModel::deaf(&Digraph::complete(4));
        for alg_run in 0..3 {
            let inits = pts(&[0.0, 0.3, 0.9, 0.5]);
            let (dv, dy) = match alg_run {
                0 => lemma8_initial_valency(Midpoint, &model, &inits),
                1 => lemma8_initial_valency(MeanValue, &model, &inits),
                _ => lemma8_initial_valency(WindowedMidpoint::new(2), &model, &inits),
            };
            assert!((dv - dy).abs() < 1e-9, "δ(C0) = Δ(y(0)): {dv} vs {dy}");
        }
    }

    #[test]
    fn lemma8_two_agent() {
        let model = NetworkModel::two_agent();
        let (dv, dy) = lemma8_initial_valency(TwoAgentThirds, &model, &pts(&[0.25, 0.75]));
        assert!((dv - dy).abs() < 1e-9);
        assert!((dy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lemma3_probe_monotone() {
        let full = NetworkModel::deaf(&Digraph::complete(3));
        let sub = full
            .restrict("two graphs", |g| !g.is_deaf(2))
            .expect("non-empty");
        let (d_sub, d_full) = lemma3_monotonicity(Midpoint, &full, &sub, &pts(&[0.0, 1.0, 0.5]));
        assert!(d_sub <= d_full + 1e-12, "{d_sub} ≤ {d_full}");
    }

    #[test]
    fn lemma7_valencies_intersect() {
        let g = Digraph::complete(4);
        for alg_run in 0..2 {
            let gap = match alg_run {
                0 => lemma7_intersection(Midpoint, &g, &pts(&[0.0, 1.0, 0.4, 0.8]), 0, 1, 2),
                _ => lemma7_intersection(MeanValue, &g, &pts(&[0.0, 1.0, 0.4, 0.8]), 0, 1, 2),
            };
            assert!(gap < 1e-9, "F_i.C and F_j.C share the F_ℓ^ω limit: {gap}");
        }
    }

    #[test]
    #[should_panic(expected = "Lemma 8")]
    fn lemma8_rejects_wrong_model() {
        // Ψ model: only agents 0..3 are ever deaf.
        let model = NetworkModel::psi(5);
        let _ = lemma8_initial_valency(Midpoint, &model, &pts(&[0.0, 1.0, 0.5, 0.2, 0.9]));
    }
}
