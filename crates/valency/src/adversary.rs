//! The lower-bound adversaries of Theorems 1, 2, 3 and 5.
//!
//! Each proof in the paper constructs, round by (macro-)round, the
//! execution that keeps the valency diameter large: among the available
//! successor configurations, at least one keeps `δ ≥ δ_prev / c` (by the
//! intersection lemmas 7/12/20 plus the triangle inequality). The
//! [`GreedyValencyAdversary`] evaluates `δ̂` on every candidate successor
//! and picks the best one — exactly the existential step of the proofs,
//! made constructive by measurement.

use consensus_algorithms::float::{det_argmax, det_min};
use consensus_algorithms::Algorithm;
use consensus_digraph::{families, Digraph};
use consensus_dynamics::scenario::Driver;
use consensus_dynamics::Execution;
use consensus_netmodel::alpha::AlphaAnalysis;
use consensus_netmodel::NetworkModel;

use crate::probe::ProbeSet;

/// A move available to the adversary: a finite block of rounds applied
/// atomically (length 1 for Theorems 1/2/5; `n − 2` for Theorem 3's σ
/// macro-rounds).
#[derive(Debug, Clone)]
pub struct CandidateMove {
    /// Human-readable label (used in bench output).
    pub label: String,
    /// The graphs applied, in order.
    pub graphs: Vec<Digraph>,
}

/// The greedy valency-maximising adversary.
///
/// Drives an [`Execution`]: each step it forks the execution once per
/// [`CandidateMove`], estimates the valency diameter `δ̂` of each
/// successor with its [`ProbeSet`], applies the best move for real, and
/// records the chosen `δ̂`. The per-step ratio of recorded `δ̂` values is
/// the measured contraction of the *valency* — the quantity the paper's
/// lower bounds constrain.
#[derive(Debug, Clone)]
pub struct GreedyValencyAdversary {
    candidates: Vec<CandidateMove>,
    probes: ProbeSet,
    /// Rounds per adversary step (all candidates must have this length).
    block_len: usize,
    /// Pool workers for the per-step candidate forks (1 = serial).
    fork_threads: usize,
    trace: consensus_obs::TraceHandle,
    trace_shard: u64,
}

impl GreedyValencyAdversary {
    /// Builds an adversary from explicit candidate moves and probes.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or the moves have unequal lengths.
    #[must_use]
    pub fn new(candidates: Vec<CandidateMove>, probes: ProbeSet) -> Self {
        assert!(!candidates.is_empty(), "adversary needs candidates");
        let block_len = candidates[0].graphs.len();
        assert!(
            candidates.iter().all(|c| c.graphs.len() == block_len),
            "all candidate moves must have the same length"
        );
        assert!(block_len >= 1, "moves must contain at least one round");
        GreedyValencyAdversary {
            candidates,
            probes,
            block_len,
            fork_threads: 1,
            trace: consensus_obs::TraceHandle::disabled(),
            trace_shard: 0,
        }
    }

    /// Attaches a [`consensus_obs::TraceHandle`]: each driver the
    /// adversary hands out records one `probe_step` span per adversary
    /// step on `(shard, lane::PROBE)`, with the chosen candidate, the
    /// recorded `δ̂`, and the candidate count. The events are
    /// content-class: the greedy argmax reduces candidate scores in
    /// index order, so the stream is bit-identical at every
    /// [`GreedyValencyAdversary::threads`] setting.
    ///
    /// The step events are committed by [`ValencyDriver::into_record`];
    /// a driver dropped without it loses its (observation-only) trace.
    #[must_use]
    pub fn trace(mut self, trace: consensus_obs::TraceHandle, shard: u64) -> Self {
        self.trace = trace;
        self.trace_shard = shard;
        self
    }

    /// Dispatches the per-step candidate forks onto `threads` pool
    /// workers (`0` means [`consensus_pool::default_threads`]; the
    /// default `1` evaluates candidates serially). Candidate scores are
    /// reduced back **in index order** with a strictly-greater-wins
    /// argmax, so the chosen move — and hence the whole drive — is
    /// bit-for-bit identical at every thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.fork_threads = if threads == 0 {
            consensus_pool::default_threads()
        } else {
            threads
        };
        self
    }

    /// Puts the underlying probe set into strict mode: a truncated probe
    /// aborts the drive (panics with the [`crate::ProbeTruncation`]
    /// message) instead of silently under-approximating `δ̂`.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.probes = self.probes.strict();
        self
    }

    /// The number of rounds each adversary step applies.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// The candidate moves.
    #[must_use]
    pub fn candidates(&self) -> &[CandidateMove] {
        &self.candidates
    }

    /// The probe set used for valency estimation.
    #[must_use]
    pub fn probes(&self) -> &ProbeSet {
        &self.probes
    }

    /// A fresh [`Driver`] for this adversary, to plug into
    /// [`consensus_dynamics::Scenario::adversary`]. The driver records
    /// an [`AdversaryTrace`] (`δ̂` per step) as it chooses; read it back
    /// with [`ValencyDriver::record`] after the run.
    #[must_use]
    pub fn driver(&self) -> ValencyDriver<'_> {
        ValencyDriver {
            adv: self,
            rec: self
                .trace
                .recorder(self.trace_shard, consensus_obs::lane::PROBE),
            record: AdversaryTrace {
                block_len: self.block_len,
                deltas: Vec::new(),
                value_diameters: Vec::new(),
                chosen: Vec::new(),
                converged: true,
            },
        }
    }

    /// Drives `exec` for `steps` adversary steps (`steps · block_len`
    /// rounds), returning the recorded valency diameters. Low-level
    /// form of `Scenario::new(..).adversary(adv.driver())` for callers
    /// that already hold an [`Execution`].
    pub fn drive<A, const D: usize>(
        &self,
        exec: &mut Execution<A, D>,
        steps: usize,
    ) -> AdversaryTrace
    where
        A: Algorithm<D> + Clone + Sync,
        A::State: Sync,
        A::Msg: Sync,
    {
        let mut driver = self.driver();
        driver.sample_initial(exec);
        let mut block = Vec::new();
        for _ in 0..steps {
            block.clear();
            Driver::next_block(&mut driver, exec, &mut block);
            for g in block.drain(..) {
                exec.step(&g);
            }
            Driver::observe(&mut driver, exec);
        }
        driver.into_record()
    }
}

/// The [`Driver`] view of a [`GreedyValencyAdversary`]: each block it
/// forks the execution once per candidate move, estimates the valency
/// diameter `δ̂` of each successor, commits the best one, and records
/// the chosen `δ̂` into an [`AdversaryTrace`].
#[derive(Debug, Clone)]
pub struct ValencyDriver<'a> {
    adv: &'a GreedyValencyAdversary,
    record: AdversaryTrace,
    rec: Option<consensus_obs::Recorder>,
}

impl ValencyDriver<'_> {
    /// The `δ̂`/`Δ` record accumulated so far (index 0 is the initial
    /// configuration once the first block has been chosen).
    #[must_use]
    pub fn record(&self) -> &AdversaryTrace {
        &self.record
    }

    /// Consumes the driver, returning the accumulated record, and
    /// commits the driver's step recorder (if the adversary was traced)
    /// into the shared trace store.
    #[must_use]
    pub fn into_record(mut self) -> AdversaryTrace {
        if let Some(rec) = self.rec.take() {
            self.adv.trace.commit(rec);
        }
        self.record
    }

    fn sample_initial<A, const D: usize>(&mut self, exec: &Execution<A, D>)
    where
        A: Algorithm<D> + Clone + Sync,
        A::State: Sync,
        A::Msg: Sync,
    {
        if self.record.deltas.is_empty() {
            let est = self.adv.probes.estimate(exec);
            self.record.deltas.push(est.diameter());
            self.record.converged &= est.converged;
            self.record.value_diameters.push(exec.value_diameter());
        }
    }

    /// Scores every candidate successor: forks the execution, applies
    /// the move, probes the fork. Pool-parallel when the adversary was
    /// built with [`GreedyValencyAdversary::threads`] > 1; the scores
    /// come back in candidate index order either way.
    fn score_candidates<A, const D: usize>(&self, exec: &Execution<A, D>) -> Vec<(f64, bool)>
    where
        A: Algorithm<D> + Clone + Sync,
        A::State: Sync,
        A::Msg: Sync,
    {
        let score = |ci: usize| {
            let cand = &self.adv.candidates[ci];
            let mut fork = exec.clone();
            for g in &cand.graphs {
                fork.step(g);
            }
            let est = self.adv.probes.estimate(&fork);
            (est.diameter(), est.converged)
        };
        if self.adv.fork_threads > 1 {
            consensus_pool::run_indexed(self.adv.candidates.len(), self.adv.fork_threads, score)
        } else {
            (0..self.adv.candidates.len()).map(score).collect()
        }
    }
}

impl<A, const D: usize> Driver<A, D> for ValencyDriver<'_>
where
    A: Algorithm<D> + Clone + Sync,
    A::State: Sync,
    A::Msg: Sync,
{
    fn block_len(&self) -> usize {
        self.adv.block_len
    }

    fn next_block(&mut self, exec: &Execution<A, D>, out: &mut Vec<Digraph>) {
        self.sample_initial(exec);
        let step = self.record.chosen.len() as u64;
        if let Some(rec) = &mut self.rec {
            rec.span_begin("probe_step", step);
        }
        let scores = self.score_candidates(exec);
        let (ci, d) = det_argmax(scores.iter().map(|&(d, _)| d)).expect("at least one candidate");
        debug_assert!(
            !d.is_nan(),
            "candidate {ci} produced a NaN valency diameter"
        );
        if let Some(rec) = &mut self.rec {
            rec.counter("probe_candidates", step, scores.len() as u64);
            rec.counter("probe_chosen", step, ci as u64);
            rec.gauge("delta", step, d);
            rec.counter("probe_converged", step, u64::from(scores[ci].1));
            rec.span_end("probe_step", step);
        }
        self.record.deltas.push(d);
        self.record.chosen.push(ci);
        self.record.converged &= scores[ci].1;
        out.extend(self.adv.candidates[ci].graphs.iter().cloned());
    }

    fn observe(&mut self, exec: &Execution<A, D>) {
        self.record.value_diameters.push(exec.value_diameter());
    }
}

/// The record of an adversarial drive: valency-diameter estimates `δ̂`
/// per adversary step (index 0 = initial configuration).
#[derive(Debug, Clone)]
pub struct AdversaryTrace {
    /// Rounds per step.
    pub block_len: usize,
    /// `δ̂` after each step (`deltas\[0\]` is the initial estimate).
    pub deltas: Vec<f64>,
    /// Value spread `Δ(y)` after each step.
    pub value_diameters: Vec<f64>,
    /// Index of the chosen candidate at each step.
    pub chosen: Vec<usize>,
    /// `true` iff every probe of every *chosen* configuration (initial
    /// sample and committed candidates) converged within the probe
    /// horizon. When `false`, the recorded `δ̂` values may
    /// under-approximate and rate claims should be treated as lower
    /// bounds on the estimate only — or re-run in strict mode.
    pub converged: bool,
}

impl AdversaryTrace {
    /// The number of adversary steps.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.deltas.len() - 1
    }

    /// Geometric-mean contraction of `δ̂` **per round**
    /// (`(δ_T/δ_0)^{1/(T·block_len)}`) — compare against the paper's
    /// per-round lower bounds.
    #[must_use]
    pub fn per_round_rate(&self) -> f64 {
        let t = self.steps() * self.block_len;
        let d0 = self.deltas[0];
        let dt = *self.deltas.last().expect("non-empty");
        if t == 0 || d0 <= 0.0 || dt <= 0.0 {
            return 0.0;
        }
        (dt / d0).powf(1.0 / t as f64)
    }

    /// Geometric-mean contraction of `δ̂` per adversary **step**.
    #[must_use]
    pub fn per_step_rate(&self) -> f64 {
        self.per_round_rate().powi(self.block_len as i32)
    }

    /// The worst single-step ratio `δ̂_{k+1}/δ̂_k` (the proofs guarantee a
    /// per-step floor; this is the measured floor).
    #[must_use]
    pub fn min_step_ratio(&self) -> f64 {
        self.deltas
            .windows(2)
            .filter(|w| w[0] > 1e-300)
            .map(|w| w[1] / w[0])
            .fold(f64::INFINITY, det_min)
    }

    /// Checks the proofs' invariant `δ̂_k ≥ δ̂_0 · rate^{k·block_len} ·
    /// (1 − slack)` for every step `k`.
    #[must_use]
    pub fn satisfies_lower_bound(&self, per_round_rate: f64, slack: f64) -> bool {
        let d0 = self.deltas[0];
        self.deltas.iter().enumerate().all(|(k, &d)| {
            let want = d0 * per_round_rate.powi((k * self.block_len) as i32);
            d >= want * (1.0 - slack)
        })
    }
}

/// The **Theorem 1** adversary (`n = 2`, model `{H0, H1, H2}`):
/// candidates are the three Figure-1 graphs; probes are the two
/// eventually-deaf continuations `H1^ω`, `H2^ω` used in the proof.
///
/// Guarantees `δ(C_t) ≥ δ(C_0)/3^t` against *any* algorithm; together
/// with Algorithm 1 ([`consensus_algorithms::TwoAgentThirds`], rate 1/3)
/// the bound is tight.
#[must_use]
pub fn theorem1() -> GreedyValencyAdversary {
    let [h0, h1, h2] = families::two_agent();
    let candidates = vec![
        CandidateMove {
            label: "H0".into(),
            graphs: vec![h0],
        },
        CandidateMove {
            label: "H1".into(),
            graphs: vec![h1.clone()],
        },
        CandidateMove {
            label: "H2".into(),
            graphs: vec![h2.clone()],
        },
    ];
    let probes = ProbeSet::new(vec![
        crate::probe::ProbePattern::Constant(h1),
        crate::probe::ProbePattern::Constant(h2),
    ]);
    GreedyValencyAdversary::new(candidates, probes)
}

/// The **Theorem 2** adversary (`n ≥ 3`, model `deaf(G)`): candidates
/// are the `F_i` (agent `i` made deaf in `G`); probes are the constant
/// continuations `F_i^ω` — precisely the executions the proof's
/// Lemma 7 intersects.
///
/// Guarantees `δ(C_t) ≥ δ(C_0)/2^t`; tight for non-split models by the
/// midpoint algorithm.
///
/// # Panics
///
/// Panics if `g.n() < 3` (the proof needs a third agent).
#[must_use]
pub fn theorem2(g: &Digraph) -> GreedyValencyAdversary {
    assert!(g.n() >= 3, "Theorem 2 needs n ≥ 3");
    let fam = families::deaf_family(g);
    let candidates = fam
        .iter()
        .enumerate()
        .map(|(i, f)| CandidateMove {
            label: format!("F{}", i + 1),
            graphs: vec![f.clone()],
        })
        .collect();
    let probes = ProbeSet::new(
        fam.into_iter()
            .map(crate::probe::ProbePattern::Constant)
            .collect(),
    );
    GreedyValencyAdversary::new(candidates, probes)
}

/// The **Theorem 3** adversary (`n ≥ 4`, Ψ model): candidates are the
/// three macro-moves `σ_i = Ψ_i^{n−2}`; probes are the periodic
/// continuations `σ_i^ω` (Lemma 12/14 of §6).
///
/// Guarantees `δ(S_t) ≥ δ(S_0)/2^{⌈t/(n−2)⌉}`, i.e. a per-round rate of
/// `(1/2)^{1/(n−2)}`; the amortized midpoint algorithm achieves
/// `(1/2)^{1/(n−1)}`, so the bound is asymptotically tight.
///
/// # Panics
///
/// Panics if `n < 4`.
#[must_use]
pub fn theorem3(n: usize) -> GreedyValencyAdversary {
    assert!(n >= 4, "Theorem 3 needs n ≥ 4");
    let candidates = (0..3)
        .map(|i| CandidateMove {
            label: format!("σ{}", i + 1),
            graphs: vec![families::psi(n, i); n - 2],
        })
        .collect();
    GreedyValencyAdversary::new(candidates, ProbeSet::sigma_psi(n))
}

/// The **Theorem 5** adversary for an arbitrary finite model `N` in
/// which exact consensus is unsolvable: per round it considers every
/// graph of `N` (these cover all chain graphs `H_r` of every α-chain),
/// probing with the constant continuations `K^ω`, `K ∈ N` — the
/// continuations Lemma 20 uses to intersect valencies along the chain.
///
/// Guarantees `δ(C_t) ≥ δ(C_0)/(D+1)^t` where `D` is the α-diameter.
#[must_use]
pub fn theorem5(model: &NetworkModel) -> GreedyValencyAdversary {
    let candidates = model
        .graphs()
        .iter()
        .enumerate()
        .map(|(i, g)| CandidateMove {
            label: format!("G{i}"),
            graphs: vec![g.clone()],
        })
        .collect();
    GreedyValencyAdversary::new(candidates, ProbeSet::constants(model))
}

/// Theorem 5's chain structure, exposed for inspection: for the two
/// extreme successor graphs `G, H` of a configuration, returns the
/// α-chain `G = H_0, …, H_q = H` (graph indices with witnesses) whose
/// intermediate valencies the proof intersects. `None` if disconnected.
#[must_use]
pub fn theorem5_chain(
    model: &NetworkModel,
    g: &Digraph,
    h: &Digraph,
) -> Option<Vec<consensus_netmodel::alpha::AlphaStep>> {
    let analysis = AlphaAnalysis::new(model);
    let gi = model.index_of(g)?;
    let hi = model.index_of(h)?;
    analysis.chain(gi, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_algorithms::{
        MeanValue, Midpoint, Overshoot, Point, SelfWeightedAverage, TwoAgentThirds,
    };

    fn pts(vals: &[f64]) -> Vec<Point<1>> {
        vals.iter().map(|&v| Point([v])).collect()
    }

    #[test]
    fn theorem1_vs_optimal_algorithm_rate_is_one_third() {
        let adv = theorem1();
        let mut exec = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let trace = adv.drive(&mut exec, 10);
        let rate = trace.per_round_rate();
        assert!(
            (rate - 1.0 / 3.0).abs() < 1e-6,
            "Algorithm 1 is exactly 1/3-contracting under the Thm 1 adversary; got {rate}"
        );
        assert!(trace.satisfies_lower_bound(1.0 / 3.0, 1e-5));
    }

    #[test]
    fn traced_drive_is_bit_identical_and_thread_invariant() {
        let trace1 = consensus_obs::TraceHandle::enabled();
        let adv1 = theorem1().trace(trace1.clone(), 0);
        let mut e1 = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let r1 = adv1.drive(&mut e1, 6);

        let plain = theorem1();
        let mut e0 = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let r0 = plain.drive(&mut e0, 6);
        assert_eq!(r1.deltas, r0.deltas, "tracing must not perturb the drive");
        assert_eq!(r1.chosen, r0.chosen);

        let s1 = trace1.merged();
        assert_eq!(s1.events_for_span("probe_step").len(), 2 * 6);
        assert_eq!(s1.gauge_values("delta").len(), 6);
        assert_eq!(
            s1.gauge_values("delta")[0].to_bits(),
            r0.deltas[1].to_bits()
        );
        assert_eq!(s1.counter_total("probe_candidates") % 6, 0);

        // Parallel candidate scoring: same content stream.
        let trace4 = consensus_obs::TraceHandle::enabled();
        let adv4 = theorem1().threads(4).trace(trace4.clone(), 0);
        let mut e4 = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let r4 = adv4.drive(&mut e4, 6);
        assert_eq!(r4.deltas, r0.deltas);
        assert_eq!(trace4.merged().content(), s1.content());
    }

    #[test]
    fn traced_probe_set_emits_per_probe_counters() {
        use consensus_netmodel::NetworkModel;
        let model = NetworkModel::deaf(&consensus_digraph::Digraph::complete(3));
        let trace = consensus_obs::TraceHandle::enabled();
        let probes = ProbeSet::deaf_continuations(&model).trace(trace.clone(), 7);
        let exec = Execution::new(Midpoint, &pts(&[0.0, 0.25, 1.0]));
        let est = probes.estimate(&exec);
        assert!(est.converged);
        let s = trace.merged();
        let n_probes = probes.patterns().len();
        assert_eq!(s.events_for_span("probe").len(), 2 * n_probes);
        assert_eq!(s.counter_total("probe_converged"), n_probes as u64);
        assert!(s.counter_total("probe_rounds") > 0, "probes ran rounds");
        assert!(s.events.iter().all(|e| e.shard == 7));
    }

    #[test]
    fn scenario_driver_matches_drive() {
        // The Scenario-facing driver and the legacy drive() entry point
        // are the same greedy logic: identical δ̂ records and outputs.
        use consensus_dynamics::Scenario;
        let adv = theorem1();
        let mut exec = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let legacy = adv.drive(&mut exec, 8);
        let mut sc = Scenario::new(TwoAgentThirds, &pts(&[0.0, 1.0])).adversary(adv.driver());
        let trace = sc.run(8);
        let record = sc.driver().record();
        assert_eq!(record.deltas, legacy.deltas);
        assert_eq!(record.chosen, legacy.chosen);
        assert_eq!(record.value_diameters, legacy.value_diameters);
        assert_eq!(trace.rounds(), 8);
        assert_eq!(sc.execution().outputs_slice(), exec.outputs_slice());
    }

    #[test]
    fn theorem1_vs_midpoint_still_at_least_one_third() {
        // Midpoint on two agents is a different algorithm; the adversary
        // must still hold δ ≥ δ0/3^t.
        let adv = theorem1();
        let mut exec = Execution::new(Midpoint, &pts(&[0.0, 1.0]));
        let trace = adv.drive(&mut exec, 12);
        assert!(
            trace.per_round_rate() >= 1.0 / 3.0 - 1e-6,
            "rate {} below 1/3",
            trace.per_round_rate()
        );
    }

    #[test]
    fn theorem2_vs_midpoint_rate_is_half() {
        let adv = theorem2(&Digraph::complete(3));
        let mut exec = Execution::new(Midpoint, &pts(&[0.0, 1.0, 0.5]));
        let trace = adv.drive(&mut exec, 12);
        let rate = trace.per_round_rate();
        assert!(
            (rate - 0.5).abs() < 1e-6,
            "midpoint is exactly 1/2-contracting; got {rate}"
        );
        assert!(trace.satisfies_lower_bound(0.5, 1e-5));
        assert!(trace.min_step_ratio() >= 0.5 - 1e-6);
    }

    #[test]
    fn theorem2_vs_mean_is_worse_than_half() {
        // Plain averaging contracts *slower* than midpoint under the
        // deaf adversary (its worst-case rate is 1 − 1/n), so δ̂ must
        // shrink by a factor ≥ 1/2 — and indeed strictly more slowly.
        let n = 4;
        let adv = theorem2(&Digraph::complete(n));
        let mut exec = Execution::new(MeanValue, &pts(&[0.0, 1.0, 1.0, 1.0]));
        let trace = adv.drive(&mut exec, 10);
        let rate = trace.per_round_rate();
        assert!(rate >= 0.5 - 1e-9, "lower bound holds: {rate}");
        assert!(
            rate > 0.6,
            "averaging should be visibly slower than midpoint: {rate}"
        );
    }

    #[test]
    fn theorem2_vs_overshoot_cannot_beat_half() {
        // §1's point: non-convex (overshooting) updates don't help.
        for kappa in [0.1, 0.3, 0.6] {
            let adv = theorem2(&Digraph::complete(3));
            let mut exec = Execution::new(Overshoot::new(kappa), &pts(&[0.0, 1.0, 0.5]));
            let trace = adv.drive(&mut exec, 10);
            assert!(
                trace.per_round_rate() >= 0.5 - 1e-6,
                "κ={kappa}: rate {} beat the bound",
                trace.per_round_rate()
            );
        }
    }

    #[test]
    fn theorem2_on_noncomplete_base_graph() {
        // deaf(G) for a non-complete rooted G: bound still holds.
        let g = consensus_digraph::Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .unwrap();
        let adv = theorem2(&g);
        let mut exec = Execution::new(SelfWeightedAverage::new(0.5), &pts(&[0.0, 1.0, 0.2, 0.9]));
        let trace = adv.drive(&mut exec, 8);
        assert!(trace.per_round_rate() >= 0.5 - 1e-6);
    }

    #[test]
    fn theorem3_macro_rate_at_least_half() {
        let n = 5;
        let adv = theorem3(n);
        assert_eq!(adv.block_len(), n - 2);
        let alg = consensus_algorithms::AmortizedMidpoint::for_agents(n);
        let mut exec = Execution::new(alg, &pts(&[0.0, 1.0, 0.4, 0.7, 0.2]));
        let trace = adv.drive(&mut exec, 8);
        // Per macro-round (n−2 rounds) the valency shrinks by ≥ 1/2.
        assert!(
            trace.per_step_rate() >= 0.5 - 1e-6,
            "per-σ rate {} below 1/2",
            trace.per_step_rate()
        );
        // Per-round form: ≥ (1/2)^{1/(n−2)}.
        let bound = 0.5f64.powf(1.0 / (n as f64 - 2.0));
        assert!(trace.per_round_rate() >= bound - 1e-6);
    }

    #[test]
    fn theorem5_on_two_agent_model_matches_theorem1() {
        // The α-diameter of {H0,H1,H2} is 2, so Theorem 5 gives 1/3 —
        // the same as Theorem 1.
        let model = NetworkModel::two_agent();
        let adv = theorem5(&model);
        let mut exec = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let trace = adv.drive(&mut exec, 12);
        assert!(trace.per_round_rate() >= 1.0 / 3.0 - 1e-6);
    }

    #[test]
    fn theorem5_chain_for_two_agent_extremes() {
        let model = NetworkModel::two_agent();
        let [_, h1, h2] = families::two_agent();
        let chain = theorem5_chain(&model, &h1, &h2).expect("connected");
        assert_eq!(chain.len(), 2, "H1 → H0 → H2");
    }

    #[test]
    fn adversary_trace_bookkeeping() {
        let adv = theorem1();
        let mut exec = Execution::new(TwoAgentThirds, &pts(&[0.0, 1.0]));
        let trace = adv.drive(&mut exec, 5);
        assert_eq!(trace.steps(), 5);
        assert_eq!(trace.deltas.len(), 6);
        assert_eq!(trace.chosen.len(), 5);
        assert_eq!(exec.round(), 5);
    }
}
