//! The injected time source for the timing side-channel.
//!
//! This crate — and every library crate that records events — never
//! reads wall-clock time itself (the detlint R3/R7 rules enforce it).
//! Timestamps enter the system only through a [`Clock`] implementation
//! injected by a binary: the `sweep` bin passes the real-clock
//! implementation that lives in `consensus-bench`, libraries and tests
//! default to [`NullClock`], and deterministic tests that want to
//! exercise the timing plumbing use [`TickClock`].

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic time source for the timing side-channel.
///
/// Returning `None` means "no time available": the event is recorded
/// with no timestamp and the content stream is unaffected. Timestamps
/// are **never** part of fingerprints, goldens, or the content JSONL —
/// they exist only in the full (profiling) serialization, which is why
/// a real-clock implementation is confined to `crates/bench` and the
/// bins (detlint R7).
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary epoch, or `None` when this clock
    /// does not measure time.
    fn now_nanos(&self) -> Option<u64>;
}

/// The deterministic default: never reports a time.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_nanos(&self) -> Option<u64> {
        None
    }
}

/// A deterministic test clock: each call advances by a fixed step, so
/// "durations" are reproducible functions of call order.
#[derive(Debug, Default)]
pub struct TickClock {
    ticks: AtomicU64,
}

impl TickClock {
    /// A tick clock starting at zero.
    #[must_use]
    pub fn new() -> Self {
        TickClock::default()
    }
}

impl Clock for TickClock {
    fn now_nanos(&self) -> Option<u64> {
        Some(self.ticks.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_reports_nothing() {
        assert_eq!(NullClock.now_nanos(), None);
    }

    #[test]
    fn tick_clock_is_monotone_and_deterministic() {
        let c = TickClock::new();
        assert_eq!(c.now_nanos(), Some(0));
        assert_eq!(c.now_nanos(), Some(1));
        assert_eq!(c.now_nanos(), Some(2));
    }
}
