//! The structured event vocabulary: spans, counters, and gauges, split
//! into a deterministic **content** class and a machine-dependent
//! **profile** class.

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A named phase opened (`round`, `cell`, `probe`, `beam_generation`).
    SpanBegin,
    /// The matching phase closed.
    SpanEnd,
    /// A monotone integer observation (message counts, steal counts).
    Counter,
    /// An `f64` observation, carried as [`f64::to_bits`] so the JSONL
    /// round-trips bit-exactly (diameters, contraction ratios).
    Gauge,
}

impl EventKind {
    /// The stable JSONL tag for this kind.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
        }
    }

    /// Parses [`EventKind::tag`] back.
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "span_begin" => EventKind::SpanBegin,
            "span_end" => EventKind::SpanEnd,
            "counter" => EventKind::Counter,
            "gauge" => EventKind::Gauge,
            _ => return None,
        })
    }
}

/// The determinism class of an event.
///
/// This split is what lets one stream serve both the CI golden gate and
/// live profiling:
///
/// * [`Class::Content`] events are a pure function of the computation —
///   bit-identical at every thread count. The trace golden
///   (`ci/golden_trace.jsonl`) pins exactly this subset.
/// * [`Class::Profile`] events depend on scheduling or the machine
///   (per-worker task counts, steal counts, shard imbalance). They are
///   excluded from the content JSONL and from fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Deterministic: part of the golden-gated content stream.
    Content,
    /// Scheduling/machine-dependent: profiling side-channel only.
    Profile,
}

/// One structured observation. `Copy` and 4 words wide — recording is a
/// bounds check and a `Vec` push on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Span boundary, counter, or gauge.
    pub kind: EventKind,
    /// Content (deterministic) or profile (machine-dependent).
    pub class: Class,
    /// The event name (`"round"`, `"cell"`, `"diameter"`, …).
    pub name: &'static str,
    /// The instance index: round number for `round` spans, cell index
    /// for `cell` spans, worker id for pool profile counters.
    pub index: u64,
    /// Payload: the counter value, or the gauge's [`f64::to_bits`].
    /// Zero for span boundaries.
    pub value: u64,
}

impl Event {
    /// A content-class span opening.
    #[must_use]
    pub fn span_begin(name: &'static str, index: u64) -> Self {
        Event {
            kind: EventKind::SpanBegin,
            class: Class::Content,
            name,
            index,
            value: 0,
        }
    }

    /// A content-class span closing.
    #[must_use]
    pub fn span_end(name: &'static str, index: u64) -> Self {
        Event {
            kind: EventKind::SpanEnd,
            class: Class::Content,
            name,
            index,
            value: 0,
        }
    }

    /// A content-class counter observation.
    #[must_use]
    pub fn counter(name: &'static str, index: u64, value: u64) -> Self {
        Event {
            kind: EventKind::Counter,
            class: Class::Content,
            name,
            index,
            value,
        }
    }

    /// A content-class gauge observation (stored as [`f64::to_bits`]).
    #[must_use]
    pub fn gauge(name: &'static str, index: u64, value: f64) -> Self {
        Event {
            kind: EventKind::Gauge,
            class: Class::Content,
            name,
            index,
            value: value.to_bits(),
        }
    }

    /// The same event reclassified as profiling side-channel data.
    #[must_use]
    pub fn profile(mut self) -> Self {
        self.class = Class::Profile;
        self
    }

    /// The gauge payload as an `f64` (bit-exact; garbage for counters).
    #[must_use]
    pub fn value_f64(&self) -> f64 {
        f64::from_bits(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_payload_roundtrips_bit_exactly() {
        for x in [0.5, -0.0, 1.0 / 3.0, f64::NAN, f64::INFINITY] {
            let e = Event::gauge("d", 7, x);
            assert_eq!(e.value_f64().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn kind_tags_roundtrip() {
        for k in [
            EventKind::SpanBegin,
            EventKind::SpanEnd,
            EventKind::Counter,
            EventKind::Gauge,
        ] {
            assert_eq!(EventKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(EventKind::from_tag("bogus"), None);
    }

    #[test]
    fn profile_reclassifies() {
        let e = Event::counter("steals", 0, 3).profile();
        assert_eq!(e.class, Class::Profile);
        assert_eq!(e.value, 3);
    }
}
