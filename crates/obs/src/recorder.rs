//! Per-shard bounded event recorders: the write side of the stream.
//!
//! One [`Recorder`] belongs to one logical shard (a sweep cell, a
//! valency probe, a run-level profile) on one lane, and is used from a
//! single worker thread at a time — recording is a bounds check and a
//! `Vec` push, no locks, no allocation after the ring fills. Recorders
//! are committed back to the owning
//! [`TraceHandle`](crate::TraceHandle), which merges them in
//! `(shard, lane)` order so the merged stream never depends on which
//! worker ran what, or when.

use std::sync::Arc;

use crate::clock::Clock;
use crate::event::Event;

/// An [`Event`] as it sits in the stream: its position key
/// (`shard`, `lane`, `seq`) plus the optional timing side-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// The logical unit that produced the event (cell index, probe
    /// index, [`crate::PROFILE_SHARD`] for run-level profiles).
    pub shard: u64,
    /// Which subsystem's recorder on that shard (see [`crate::lane`]).
    pub lane: u8,
    /// Position within the recorder, in record order.
    pub seq: u32,
    /// The event itself.
    pub event: Event,
    /// Timing side-channel: the injected clock's reading at record
    /// time, if it had one. Never serialized into the content stream.
    pub t_ns: Option<u64>,
}

/// A bounded event buffer for one `(shard, lane)`.
///
/// The capacity bound makes recording safe on million-round runs: once
/// full, further events are counted in [`Recorder::dropped`] instead of
/// growing without limit.
#[derive(Clone)]
pub struct Recorder {
    shard: u64,
    lane: u8,
    clock: Arc<dyn Clock>,
    cap: usize,
    events: Vec<TimedEvent>,
    dropped: u64,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("shard", &self.shard)
            .field("lane", &self.lane)
            .field("cap", &self.cap)
            .field("len", &self.events.len())
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// A recorder for `(shard, lane)` holding at most `cap` events.
    #[must_use]
    pub fn new(shard: u64, lane: u8, cap: usize, clock: Arc<dyn Clock>) -> Self {
        Recorder {
            shard,
            lane,
            clock,
            cap: cap.max(1),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// The shard this recorder belongs to.
    #[must_use]
    pub fn shard(&self) -> u64 {
        self.shard
    }

    /// The lane this recorder belongs to.
    #[must_use]
    pub fn lane(&self) -> u8 {
        self.lane
    }

    /// Records one event, stamping it from the injected clock. Silently
    /// counted as dropped once the capacity bound is reached.
    pub fn record(&mut self, event: Event) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        let seq = self.events.len() as u32;
        self.events.push(TimedEvent {
            shard: self.shard,
            lane: self.lane,
            seq,
            event,
            t_ns: self.clock.now_nanos(),
        });
    }

    /// Records a content-class span opening.
    pub fn span_begin(&mut self, name: &'static str, index: u64) {
        self.record(Event::span_begin(name, index));
    }

    /// Records a content-class span closing.
    pub fn span_end(&mut self, name: &'static str, index: u64) {
        self.record(Event::span_end(name, index));
    }

    /// Records a content-class counter.
    pub fn counter(&mut self, name: &'static str, index: u64, value: u64) {
        self.record(Event::counter(name, index, value));
    }

    /// Records a content-class gauge.
    pub fn gauge(&mut self, name: &'static str, index: u64, value: f64) {
        self.record(Event::gauge(name, index, value));
    }

    /// Records a profile-class counter (scheduling-dependent data).
    pub fn profile_counter(&mut self, name: &'static str, index: u64, value: u64) {
        self.record(Event::counter(name, index, value).profile());
    }

    /// Records a profile-class gauge (scheduling-dependent data).
    pub fn profile_gauge(&mut self, name: &'static str, index: u64, value: f64) {
        self.record(Event::gauge(name, index, value).profile());
    }

    /// Events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events rejected by the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recorded events, in record order.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Consumes the recorder into its events and drop count.
    #[must_use]
    pub fn into_parts(self) -> (Vec<TimedEvent>, u64) {
        (self.events, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{NullClock, TickClock};

    #[test]
    fn records_in_order_with_seq() {
        let mut r = Recorder::new(3, 1, 16, Arc::new(NullClock));
        r.span_begin("cell", 3);
        r.counter("messages", 3, 12);
        r.span_end("cell", 3);
        assert_eq!(r.len(), 3);
        let seqs: Vec<u32> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(r.events().iter().all(|e| e.shard == 3 && e.lane == 1));
        assert!(r.events().iter().all(|e| e.t_ns.is_none()));
    }

    #[test]
    fn capacity_bound_counts_drops() {
        let mut r = Recorder::new(0, 0, 2, Arc::new(NullClock));
        for i in 0..5 {
            r.counter("c", i, i);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn injected_clock_stamps_the_side_channel() {
        let mut r = Recorder::new(0, 0, 8, Arc::new(TickClock::new()));
        r.span_begin("round", 1);
        r.span_end("round", 1);
        let ts: Vec<Option<u64>> = r.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![Some(0), Some(1)]);
    }
}
