//! # consensus-obs
//!
//! Deterministic structured observability for the *Tight Bounds for
//! Asymptotic and Approximate Consensus* reproduction: event tracing,
//! round-level telemetry, and profiling that never violates the repo's
//! determinism contract.
//!
//! The paper's claims are trajectory claims — per-round contraction
//! ratios approaching the tight 1/2 and 1/3 rates, decision-time
//! growth curves — but goldens and `Stats` only see end-of-run
//! aggregates. This crate is the layer in between: instrumented code
//! records structured [`Event`]s (spans for `round`/`cell`/`probe`/
//! `beam_generation`, counters, bit-exact f64 gauges) into bounded
//! per-shard [`Recorder`]s, and a [`TraceHandle`] merges them with a
//! deterministic `(shard, lane)`-ordered reduction.
//!
//! ## The determinism contract
//!
//! * **Content vs profile.** Every event carries a [`Class`]:
//!   [`Class::Content`] events are pure functions of the computation
//!   and merge bit-identically at every thread count (CI pins this
//!   with `ci/golden_trace.jsonl`); [`Class::Profile`] events
//!   (per-worker task/steal counts, shard imbalance) are
//!   scheduling-dependent and excluded from the content stream.
//! * **Timing is a side-channel.** Wall-clock time enters only through
//!   a caller-injected [`Clock`] — libraries default to [`NullClock`],
//!   the real clock lives in `consensus-bench` and the bins (detlint
//!   R7 enforces this). Timestamps ride next to events, are stripped
//!   by [`EventStream::content`], and are never part of fingerprints
//!   or goldens.
//!
//! ## Sinks
//!
//! * [`jsonl`] — byte-stable JSONL ([`to_jsonl_content`] /
//!   [`to_jsonl_full`]) plus the parser the `trace-report` bin uses;
//! * the in-memory query API on [`EventStream`]
//!   ([`EventStream::events_for_span`], [`EventStream::gauge_values`],
//!   [`summarize`] percentiles);
//! * [`render_summary`] — plaintext counters in the style of (and
//!   appended to) the control-plane metrics endpoint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod jsonl;
pub mod query;
pub mod recorder;
pub mod telemetry;
pub mod trace;

pub use clock::{Clock, NullClock, TickClock};
pub use event::{Class, Event, EventKind};
pub use jsonl::{parse_line, to_jsonl_content, to_jsonl_full, ParsedEvent};
pub use query::{percentile, render_summary, summarize, HistogramSummary};
pub use recorder::{Recorder, TimedEvent};
pub use telemetry::RoundTelemetry;
pub use trace::{lane, EventStream, TraceHandle, DEFAULT_RECORDER_CAP, PROFILE_SHARD};
