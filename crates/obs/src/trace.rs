//! The [`TraceHandle`]: the shared, cheaply-cloneable entry point that
//! instrumented layers thread through, and the merged [`EventStream`]
//! it produces.
//!
//! A disabled handle (the default) is a single `Option` check on every
//! instrumentation site — `recorder()` returns `None` and the
//! instrumented code takes its untraced path. An enabled handle hands
//! out one bounded [`Recorder`] per `(shard, lane)`; workers record
//! into it privately and commit it back when their unit of work
//! completes. [`TraceHandle::merged`] then sorts the committed
//! recorders by `(shard, lane)` — **never** by commit order — so the
//! merged content stream is bit-identical at every thread count.

use std::sync::{Arc, Mutex};

use crate::clock::{Clock, NullClock};
use crate::event::Class;
use crate::recorder::{Recorder, TimedEvent};

/// The shard used by run-level profile recorders (pool worker stats);
/// `u64::MAX` so they sort after every real cell/probe shard.
pub const PROFILE_SHARD: u64 = u64::MAX;

/// Default per-recorder capacity bound.
pub const DEFAULT_RECORDER_CAP: usize = 1 << 16;

/// Lane constants: which subsystem's recorder occupies a shard.
///
/// The merge key is `(shard, lane)`, so two subsystems may both record
/// against the same logical shard (a sweep cell span on
/// [`lane::SWEEP`], the bench layer's outcome gauges on
/// [`lane::ENRICH`]) without their event order depending on timing.
/// The caller's contract is that at most one recorder is committed per
/// `(shard, lane)` pair.
pub mod lane {
    /// Sweep-harness cell spans.
    pub const SWEEP: u8 = 0;
    /// Bench-layer per-cell outcome enrichment.
    pub const ENRICH: u8 = 1;
    /// Executor round telemetry.
    pub const EXECUTOR: u8 = 2;
    /// Valency probe spans.
    pub const PROBE: u8 = 3;
    /// Beam-search generation spans.
    pub const BEAM: u8 = 4;
    /// Pool worker profiles (profile class).
    pub const POOL: u8 = 5;
    /// Control-plane coordinator spans (profile class).
    pub const CONTROL: u8 = 6;
}

struct Shared {
    clock: Arc<dyn Clock>,
    cap: usize,
    committed: Mutex<Vec<Recorder>>,
}

/// A cloneable handle onto one trace; see the module docs.
///
/// All clones share the same committed-recorder store, so a handle can
/// be threaded by value through builders ([`Sweep::trace`],
/// `ProbeSet::trace`, `BeamSearch::trace` — see those crates) while the
/// caller keeps a clone to merge at the end.
///
/// [`Sweep::trace`]: https://docs.rs/consensus-sweep
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Shared>>,
}

// The handle is panic-safe by construction: the only interior
// mutability is the committed-recorder Mutex, which poisons on panic,
// and clocks are stateless or atomic. Spell that out so holders (e.g.
// a traced `Sweep`) stay usable under `catch_unwind`.
impl std::panic::UnwindSafe for TraceHandle {}
impl std::panic::RefUnwindSafe for TraceHandle {}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("TraceHandle(disabled)"),
            Some(s) => write!(
                f,
                "TraceHandle(enabled, {} recorders committed)",
                s.committed.lock().map_or(0, |c| c.len())
            ),
        }
    }
}

impl TraceHandle {
    /// The inert handle: every `recorder()` call returns `None`.
    #[must_use]
    pub fn disabled() -> Self {
        TraceHandle { inner: None }
    }

    /// An enabled handle with the default capacity and the
    /// deterministic [`NullClock`] (no timing side-channel).
    #[must_use]
    pub fn enabled() -> Self {
        TraceHandle::enabled_with(DEFAULT_RECORDER_CAP, Arc::new(NullClock))
    }

    /// An enabled handle with an explicit per-recorder capacity and an
    /// injected clock (the only way wall time ever enters a trace).
    #[must_use]
    pub fn enabled_with(cap: usize, clock: Arc<dyn Clock>) -> Self {
        TraceHandle {
            inner: Some(Arc::new(Shared {
                clock,
                cap,
                committed: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh recorder for `(shard, lane)`, or `None` when disabled.
    /// The caller must [`commit`](TraceHandle::commit) it when the unit
    /// of work completes, and must not hand out two recorders for the
    /// same `(shard, lane)`.
    #[must_use]
    pub fn recorder(&self, shard: u64, lane: u8) -> Option<Recorder> {
        self.inner
            .as_ref()
            .map(|s| Recorder::new(shard, lane, s.cap, Arc::clone(&s.clock)))
    }

    /// Commits a completed recorder into the shared store. May be
    /// called from any worker thread; commit order never affects the
    /// merged stream. A recorder committed to a disabled handle is
    /// silently discarded.
    pub fn commit(&self, rec: Recorder) {
        if let Some(s) = &self.inner {
            s.committed.lock().expect("trace store poisoned").push(rec);
        }
    }

    /// The injected clock ([`NullClock`] when disabled) — what the
    /// instrumented layers use to time work without reading wall
    /// clocks themselves.
    #[must_use]
    pub fn clock(&self) -> Arc<dyn Clock> {
        match &self.inner {
            Some(s) => Arc::clone(&s.clock),
            None => Arc::new(NullClock),
        }
    }

    /// Merges every committed recorder into one stream, ordered by
    /// `(shard, lane, seq)` — a deterministic, index-ordered reduction
    /// that erases scheduling: the same computation commits the same
    /// recorders, so the merged **content** stream is bit-identical at
    /// any thread count. Non-destructive; recorders stay committed.
    #[must_use]
    pub fn merged(&self) -> EventStream {
        let Some(s) = &self.inner else {
            return EventStream::default();
        };
        let committed = s.committed.lock().expect("trace store poisoned");
        let mut recs: Vec<&Recorder> = committed.iter().collect();
        recs.sort_by_key(|r| (r.shard(), r.lane()));
        let mut events = Vec::with_capacity(recs.iter().map(|r| r.len()).sum());
        let mut dropped = 0;
        for r in recs {
            events.extend_from_slice(r.events());
            dropped += r.dropped();
        }
        EventStream { events, dropped }
    }
}

/// A merged, ordered event stream: the read side of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventStream {
    /// Events in `(shard, lane, seq)` order.
    pub events: Vec<TimedEvent>,
    /// Total events rejected by recorder capacity bounds.
    pub dropped: u64,
}

impl EventStream {
    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The deterministic subset: content-class events with the timing
    /// side-channel stripped. Two runs of the same computation produce
    /// equal `content()` streams regardless of thread count or clock.
    ///
    /// `seq` is renumbered per `(shard, lane)` over the surviving
    /// events: whether a profile-class event (say, a shard-imbalance
    /// gauge only emitted on multi-worker runs) occupied a slot in the
    /// original recorder must not leak into the content stream.
    #[must_use]
    pub fn content(&self) -> EventStream {
        let mut next: std::collections::BTreeMap<(u64, u8), u32> =
            std::collections::BTreeMap::new();
        EventStream {
            events: self
                .events
                .iter()
                .filter(|e| e.event.class == Class::Content)
                .map(|e| {
                    let seq = next.entry((e.shard, e.lane)).or_insert(0);
                    let renumbered = TimedEvent {
                        t_ns: None,
                        seq: *seq,
                        ..*e
                    };
                    *seq += 1;
                    renumbered
                })
                .collect(),
            dropped: self.dropped,
        }
    }

    /// Every span-boundary event with the given name, in stream order.
    #[must_use]
    pub fn events_for_span(&self, name: &str) -> Vec<&TimedEvent> {
        self.events
            .iter()
            .filter(|e| {
                e.event.name == name
                    && matches!(
                        e.event.kind,
                        crate::EventKind::SpanBegin | crate::EventKind::SpanEnd
                    )
            })
            .collect()
    }

    /// The sum of every counter with the given name.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.event.kind == crate::EventKind::Counter && e.event.name == name)
            .map(|e| e.event.value)
            .sum()
    }

    /// Every gauge value with the given name, in stream order.
    #[must_use]
    pub fn gauge_values(&self, name: &str) -> Vec<f64> {
        self.events
            .iter()
            .filter(|e| e.event.kind == crate::EventKind::Gauge && e.event.name == name)
            .map(|e| e.event.value_f64())
            .collect()
    }

    /// Durations of completed spans with the given name, from the
    /// timing side-channel: one entry per begin/end pair on the same
    /// `(shard, lane, index)`, in end order. Pairs without timestamps
    /// are skipped (the [`NullClock`] case).
    #[must_use]
    pub fn span_durations_ns(&self, name: &str) -> Vec<u64> {
        use std::collections::BTreeMap;
        let mut open: BTreeMap<(u64, u8, u64), u64> = BTreeMap::new();
        let mut out = Vec::new();
        for e in &self.events {
            if e.event.name != name {
                continue;
            }
            let key = (e.shard, e.lane, e.event.index);
            match e.event.kind {
                crate::EventKind::SpanBegin => {
                    if let Some(t) = e.t_ns {
                        open.insert(key, t);
                    }
                }
                crate::EventKind::SpanEnd => {
                    if let (Some(t1), Some(t0)) = (e.t_ns, open.remove(&key)) {
                        out.push(t1.saturating_sub(t0));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TickClock;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TraceHandle::disabled();
        assert!(!t.is_enabled());
        assert!(t.recorder(0, 0).is_none());
        assert!(t.merged().is_empty());
        assert_eq!(t.clock().now_nanos(), None);
    }

    #[test]
    fn merge_orders_by_shard_and_lane_not_commit_order() {
        let t = TraceHandle::enabled();
        let mut late = t.recorder(5, lane::SWEEP).expect("enabled");
        late.span_begin("cell", 5);
        let mut early = t.recorder(1, lane::SWEEP).expect("enabled");
        early.span_begin("cell", 1);
        let mut enrich = t.recorder(1, lane::ENRICH).expect("enabled");
        enrich.gauge("rate", 1, 0.5);
        // Commit deliberately out of order.
        t.commit(late);
        t.commit(enrich);
        t.commit(early);
        let s = t.merged();
        let keys: Vec<(u64, u8)> = s.events.iter().map(|e| (e.shard, e.lane)).collect();
        assert_eq!(keys, vec![(1, 0), (1, 1), (5, 0)]);
    }

    #[test]
    fn content_strips_profile_and_timing() {
        let t = TraceHandle::enabled_with(64, Arc::new(TickClock::new()));
        let mut r = t.recorder(0, lane::POOL).expect("enabled");
        r.counter("messages", 0, 9);
        r.profile_counter("steals", 0, 2);
        t.commit(r);
        let s = t.merged();
        assert_eq!(s.len(), 2);
        assert!(s.events.iter().any(|e| e.t_ns.is_some()));
        let c = s.content();
        assert_eq!(c.len(), 1);
        assert_eq!(c.events[0].event.name, "messages");
        assert!(c.events.iter().all(|e| e.t_ns.is_none()));
    }

    #[test]
    fn query_api_finds_spans_counters_gauges() {
        let t = TraceHandle::enabled_with(64, Arc::new(TickClock::new()));
        let mut r = t.recorder(2, lane::EXECUTOR).expect("enabled");
        r.span_begin("round", 1);
        r.counter("messages", 1, 4);
        r.gauge("diameter", 1, 0.25);
        r.span_end("round", 1);
        r.span_begin("round", 2);
        r.counter("messages", 2, 4);
        r.span_end("round", 2);
        t.commit(r);
        let s = t.merged();
        assert_eq!(s.events_for_span("round").len(), 4);
        assert_eq!(s.counter_total("messages"), 8);
        assert_eq!(s.gauge_values("diameter"), vec![0.25]);
        assert_eq!(s.span_durations_ns("round").len(), 2);
        assert_eq!(s.span_durations_ns("round")[0], 3, "ticks 0..=3");
    }

    #[test]
    fn clones_share_the_store() {
        let t = TraceHandle::enabled();
        let t2 = t.clone();
        let mut r = t2.recorder(0, 0).expect("enabled");
        r.counter("c", 0, 1);
        t2.commit(r);
        assert_eq!(t.merged().len(), 1);
    }
}
