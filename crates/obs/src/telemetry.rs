//! Round-level executor telemetry: the [`RoundTelemetry`] observer the
//! dense and sharded executors emit through.
//!
//! Where `DiameterTrace` retains a decimated tail of diameters for
//! post-hoc plotting, `RoundTelemetry` emits the live convergence curve
//! as structured events: per-round diameter, the contraction ratio
//! Δ(t)/Δ(t−1), and the round's message (reception) count, wrapped in
//! `round` spans whose begin/end timestamps populate the timing
//! side-channel when a real clock is injected.

use crate::recorder::Recorder;

/// A per-round event emitter wrapped around one [`Recorder`].
///
/// The executor calls [`begin_round`](RoundTelemetry::begin_round)
/// before stepping and [`end_round`](RoundTelemetry::end_round) after;
/// `stride` decimates emission for million-round runs while the
/// contraction ratio stays the exact per-round ratio (the previous
/// diameter is tracked every round, emitted or not).
#[derive(Debug, Clone)]
pub struct RoundTelemetry {
    rec: Recorder,
    prev_diameter: Option<f64>,
    stride: u64,
}

impl RoundTelemetry {
    /// Telemetry writing into `rec` (typically
    /// `trace.recorder(shard, lane::EXECUTOR)`).
    #[must_use]
    pub fn new(rec: Recorder) -> Self {
        RoundTelemetry {
            rec,
            prev_diameter: None,
            stride: 1,
        }
    }

    /// Emit events only every `stride`-th round (`0` is treated as 1).
    /// Decimation never changes *which* ratio is reported for an
    /// emitted round, only which rounds are emitted.
    #[must_use]
    pub fn stride(mut self, stride: u64) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Seeds the contraction baseline with the diameter of the initial
    /// configuration, so round 1 reports Δ(1)/Δ(0).
    #[must_use]
    pub fn initial_diameter(mut self, d0: f64) -> Self {
        self.prev_diameter = Some(d0);
        self
    }

    fn emits(&self, round: u64) -> bool {
        round.is_multiple_of(self.stride)
    }

    /// Whether the executor must measure this round: true when the
    /// round emits, or when the *next* one does (its contraction ratio
    /// divides by this round's diameter). On a decimated round where
    /// this returns `false` the executor may run its plain step and
    /// skip [`end_round`](RoundTelemetry::end_round) entirely — the
    /// baseline the next emitted ratio needs is still recorded, so
    /// every reported ratio stays the exact per-round value.
    #[must_use]
    pub fn needs_diameter(&self, round: u64) -> bool {
        self.emits(round) || self.emits(round + 1)
    }

    /// Marks the start of round `round` (timestamps the span begin).
    pub fn begin_round(&mut self, round: u64) {
        if self.emits(round) {
            self.rec.span_begin("round", round);
        }
    }

    /// Marks the end of round `round` with its resulting diameter and
    /// the number of message receptions the round performed.
    pub fn end_round(&mut self, round: u64, diameter: f64, receptions: u64) {
        if self.emits(round) {
            self.rec.gauge("diameter", round, diameter);
            if let Some(prev) = self.prev_diameter {
                if prev > 0.0 && prev.is_finite() {
                    self.rec.gauge("contraction", round, diameter / prev);
                }
            }
            self.rec.counter("messages", round, receptions);
            self.rec.span_end("round", round);
        }
        self.prev_diameter = Some(diameter);
    }

    /// The underlying recorder, for extra observations (shard imbalance
    /// profile gauges, run-level counters).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.rec
    }

    /// Consumes the telemetry into its recorder, ready to commit.
    #[must_use]
    pub fn finish(self) -> Recorder {
        self.rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{lane, TraceHandle};

    #[test]
    fn emits_diameter_contraction_and_messages_per_round() {
        let t = TraceHandle::enabled();
        let mut tel = RoundTelemetry::new(t.recorder(0, lane::EXECUTOR).expect("enabled"))
            .initial_diameter(1.0);
        for (round, d) in [(1u64, 0.5), (2, 0.25)] {
            tel.begin_round(round);
            tel.end_round(round, d, 10);
        }
        t.commit(tel.finish());
        let s = t.merged();
        assert_eq!(s.gauge_values("diameter"), vec![0.5, 0.25]);
        assert_eq!(s.gauge_values("contraction"), vec![0.5, 0.5]);
        assert_eq!(s.counter_total("messages"), 20);
        assert_eq!(s.events_for_span("round").len(), 4);
    }

    #[test]
    fn stride_decimates_but_ratio_stays_per_round() {
        let t = TraceHandle::enabled();
        let mut tel =
            RoundTelemetry::new(t.recorder(0, lane::EXECUTOR).expect("enabled")).stride(2);
        // Diameters halve each round; only even rounds are emitted.
        let mut d = 1.0;
        for round in 1..=4u64 {
            d *= 0.5;
            tel.begin_round(round);
            tel.end_round(round, d, 1);
        }
        t.commit(tel.finish());
        let s = t.merged();
        assert_eq!(s.gauge_values("diameter"), vec![0.25, 0.0625]);
        // The ratio at an emitted round is vs the *previous round*, not
        // the previously emitted one.
        assert_eq!(s.gauge_values("contraction"), vec![0.5, 0.5]);
    }

    #[test]
    fn zero_baseline_suppresses_the_ratio() {
        let t = TraceHandle::enabled();
        let mut tel = RoundTelemetry::new(t.recorder(0, lane::EXECUTOR).expect("enabled"))
            .initial_diameter(0.0);
        tel.begin_round(1);
        tel.end_round(1, 0.0, 1);
        t.commit(tel.finish());
        assert!(t.merged().gauge_values("contraction").is_empty());
    }
}
