//! In-memory aggregation over event streams: histogram percentiles and
//! the plaintext summary that extends the control-plane metrics
//! endpoint.
//!
//! All ordering goes through [`f64::total_cmp`] and all grouping
//! through `BTreeMap`, so every summary is a deterministic function of
//! the stream.

use std::collections::BTreeMap;

use crate::event::EventKind;
use crate::trace::EventStream;

/// Percentile by the nearest-rank-on-sorted convention used across the
/// repo's stats: index `q * (len - 1)` rounded half-up.
///
/// # Panics
///
/// Panics if `sorted` is empty.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty set");
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    sorted[(pos + 0.5) as usize]
}

/// A five-number-plus summary of a value set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Summarizes a value set (`None` when empty). Sorting uses
/// [`f64::total_cmp`], so NaNs order deterministically instead of
/// poisoning the result.
#[must_use]
pub fn summarize(values: &[f64]) -> Option<HistogramSummary> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let sum: f64 = sorted.iter().sum();
    Some(HistogramSummary {
        count: sorted.len(),
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        mean: sum / sorted.len() as f64,
        p50: percentile(&sorted, 0.50),
        p90: percentile(&sorted, 0.90),
        p99: percentile(&sorted, 0.99),
    })
}

/// Renders a stream as plaintext lines in the Prometheus text style of
/// `controlplane::metrics::render_plaintext` — the extension the live
/// metrics endpoint appends when a trace is attached.
///
/// Span counts are completed-pair counts; names iterate in `BTreeMap`
/// order, so the rendering is deterministic.
#[must_use]
pub fn render_summary(stream: &EventStream) -> String {
    let mut spans: BTreeMap<&str, u64> = BTreeMap::new();
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &stream.events {
        match e.event.kind {
            EventKind::SpanEnd => *spans.entry(e.event.name).or_insert(0) += 1,
            EventKind::Counter => *counters.entry(e.event.name).or_insert(0) += e.event.value,
            EventKind::SpanBegin | EventKind::Gauge => {}
        }
    }
    let mut out = String::new();
    out.push_str(&format!("obs_events {}\n", stream.len()));
    out.push_str(&format!("obs_dropped {}\n", stream.dropped));
    for (name, n) in &spans {
        out.push_str(&format!("obs_spans{{name=\"{name}\"}} {n}\n"));
    }
    for (name, total) in &counters {
        out.push_str(&format!("obs_counter{{name=\"{name}\"}} {total}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{lane, TraceHandle};

    #[test]
    fn summarize_orders_with_total_cmp() {
        let s = summarize(&[3.0, 1.0, 2.0, f64::NAN]).expect("non-empty");
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert!(s.max.is_nan(), "NaN sorts last under total_cmp");
        assert_eq!(s.p50, 3.0, "rank 1.5 rounds half-up to index 2");
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn percentile_of_singleton_is_the_value() {
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn percentile_picks_ranked_entries() {
        let v: Vec<f64> = (0..10).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.5), 5.0, "4.5 rounds half-up");
        assert_eq!(percentile(&v, 0.9), 8.0, "8.1 rounds to 8");
        assert_eq!(percentile(&v, 1.0), 9.0);
    }

    #[test]
    fn summary_lines_are_deterministic_and_sorted() {
        let t = TraceHandle::enabled();
        let mut r = t.recorder(0, lane::SWEEP).expect("enabled");
        r.span_begin("cell", 0);
        r.counter("messages", 0, 5);
        r.counter("beam_candidates", 0, 2);
        r.span_end("cell", 0);
        t.commit(r);
        let text = render_summary(&t.merged());
        assert_eq!(
            text,
            "obs_events 4\nobs_dropped 0\nobs_spans{name=\"cell\"} 1\n\
             obs_counter{name=\"beam_candidates\"} 2\nobs_counter{name=\"messages\"} 5\n"
        );
    }
}
