//! Byte-stable JSONL serialization of event streams, plus the
//! hand-rolled line parser the `trace-report` bin reads back with.
//!
//! Same contract as `consensus-sweep::report`: keys in a fixed order,
//! floats in Rust's shortest-roundtrip formatting with non-finite
//! values as `null`, and — in content mode — nothing machine- or
//! time-dependent, so the CI trace golden (`ci/golden_trace.jsonl`)
//! can diff the output byte-for-byte across thread counts.
//!
//! Gauges additionally carry their payload as a `bits` hex field: the
//! `value` field is for humans, `bits` is the authoritative bit-exact
//! round-trip channel (`f64::to_bits`).

use crate::event::{Class, EventKind};
use crate::trace::EventStream;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_line(out: &mut String, e: &crate::recorder::TimedEvent, timing: bool) {
    out.push_str(&format!(
        "{{\"shard\":{},\"lane\":{},\"seq\":{},\"kind\":\"{}\",\"name\":\"{}\",\"index\":{}",
        e.shard,
        e.lane,
        e.seq,
        e.event.kind.tag(),
        escape(e.event.name),
        e.event.index,
    ));
    match e.event.kind {
        EventKind::Counter => out.push_str(&format!(",\"value\":{}", e.event.value)),
        EventKind::Gauge => {
            let x = e.event.value_f64();
            let human = if x.is_finite() {
                format!("{x:?}")
            } else {
                "null".to_owned()
            };
            out.push_str(&format!(
                ",\"value\":{human},\"bits\":\"{:016x}\"",
                e.event.value
            ));
        }
        EventKind::SpanBegin | EventKind::SpanEnd => {}
    }
    if e.event.class == Class::Profile {
        out.push_str(",\"class\":\"profile\"");
    }
    if timing {
        if let Some(t) = e.t_ns {
            out.push_str(&format!(",\"t_ns\":{t}"));
        }
    }
    out.push_str("}\n");
}

/// Serializes the **content** stream: content-class events only, timing
/// stripped — the byte-stable, thread-count-invariant form the CI trace
/// golden pins.
#[must_use]
pub fn to_jsonl_content(stream: &EventStream) -> String {
    let mut out = String::new();
    for e in &stream.content().events {
        push_line(&mut out, e, false);
    }
    out
}

/// Serializes the **full** stream: every event (profile class tagged)
/// with the timing side-channel included where the injected clock
/// provided one. Machine-dependent by design; never golden-gated.
#[must_use]
pub fn to_jsonl_full(stream: &EventStream) -> String {
    let mut out = String::new();
    for e in &stream.events {
        push_line(&mut out, e, true);
    }
    out
}

/// One event parsed back from a JSONL line (owned name; payload kept
/// as raw bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// The shard field.
    pub shard: u64,
    /// The lane field.
    pub lane: u8,
    /// The seq field.
    pub seq: u32,
    /// The event kind.
    pub kind: EventKind,
    /// The determinism class (`profile` tag present or not).
    pub class: Class,
    /// The event name.
    pub name: String,
    /// The instance index.
    pub index: u64,
    /// Counter value, or gauge bits (from the `bits` field).
    pub value: u64,
    /// The timing side-channel, when serialized.
    pub t_ns: Option<u64>,
}

impl ParsedEvent {
    /// The gauge payload as an `f64` (bit-exact; garbage for counters).
    #[must_use]
    pub fn value_f64(&self) -> f64 {
        f64::from_bits(self.value)
    }
}

/// Extracts the raw text of `"key":<value>` from a single-line JSON
/// object produced by this module (values never contain unescaped `,`
/// or `}` except inside strings, which our emitter never produces).
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .find(|&(_, c)| c == ',' || c == '}')
        .map_or(rest.len(), |(i, _)| i);
    Some(rest[..end].trim())
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let raw = raw_field(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    // Names are identifiers in practice; unescape the basics anyway.
    Some(
        inner
            .replace("\\\"", "\"")
            .replace("\\n", "\n")
            .replace("\\\\", "\\"),
    )
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    raw_field(line, key)?.parse().ok()
}

/// Parses one line written by [`to_jsonl_content`] or
/// [`to_jsonl_full`]. Returns `None` on blank or malformed lines.
#[must_use]
pub fn parse_line(line: &str) -> Option<ParsedEvent> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let kind = EventKind::from_tag(&str_field(line, "kind")?)?;
    let value = match kind {
        EventKind::Counter => u64_field(line, "value").unwrap_or(0),
        EventKind::Gauge => {
            let hex = str_field(line, "bits")?;
            u64::from_str_radix(&hex, 16).ok()?
        }
        EventKind::SpanBegin | EventKind::SpanEnd => 0,
    };
    let class = if str_field(line, "class").as_deref() == Some("profile") {
        Class::Profile
    } else {
        Class::Content
    };
    Some(ParsedEvent {
        shard: u64_field(line, "shard")?,
        lane: u64_field(line, "lane")? as u8,
        seq: u64_field(line, "seq")? as u32,
        kind,
        class,
        name: str_field(line, "name")?,
        index: u64_field(line, "index")?,
        value,
        t_ns: u64_field(line, "t_ns"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TickClock;
    use crate::trace::{lane, TraceHandle};
    use std::sync::Arc;

    fn sample() -> EventStream {
        let t = TraceHandle::enabled_with(64, Arc::new(TickClock::new()));
        let mut r = t.recorder(1, lane::SWEEP).expect("enabled");
        r.span_begin("cell", 1);
        r.counter("messages", 1, 42);
        r.gauge("diameter", 1, 1.0 / 3.0);
        r.profile_counter("steals", 0, 2);
        r.span_end("cell", 1);
        t.commit(r);
        t.merged()
    }

    #[test]
    fn content_jsonl_is_byte_stable_and_untimed() {
        let s = sample();
        let a = to_jsonl_content(&s);
        let b = to_jsonl_content(&s);
        assert_eq!(a, b);
        assert!(!a.contains("t_ns"), "{a}");
        assert!(!a.contains("profile"), "{a}");
        assert!(a.contains("\"kind\":\"span_begin\""));
        assert!(a.contains("\"bits\":\"3fd5555555555555\""));
        assert!(a.lines().count() == 4, "{a}");
    }

    #[test]
    fn full_jsonl_carries_timing_and_class() {
        let s = sample();
        let full = to_jsonl_full(&s);
        assert!(full.contains("\"t_ns\":0"), "{full}");
        assert!(full.contains("\"class\":\"profile\""), "{full}");
        assert_eq!(full.lines().count(), 5);
    }

    #[test]
    fn parse_roundtrips_every_line() {
        let s = sample();
        for (line, want) in to_jsonl_full(&s).lines().zip(&s.events) {
            let p = parse_line(line).expect("parses");
            assert_eq!(p.shard, want.shard);
            assert_eq!(p.lane, want.lane);
            assert_eq!(p.seq, want.seq);
            assert_eq!(p.kind, want.event.kind);
            assert_eq!(p.class, want.event.class);
            assert_eq!(p.name, want.event.name);
            assert_eq!(p.index, want.event.index);
            assert_eq!(p.value, want.event.value);
            assert_eq!(p.t_ns, want.t_ns);
        }
    }

    #[test]
    fn gauge_bits_roundtrip_even_for_non_finite() {
        let t = TraceHandle::enabled();
        let mut r = t.recorder(0, 0).expect("enabled");
        r.gauge("g", 0, f64::INFINITY);
        t.commit(r);
        let s = t.merged();
        let text = to_jsonl_content(&s);
        assert!(text.contains("\"value\":null"), "{text}");
        let p = parse_line(text.lines().next().unwrap()).expect("parses");
        assert_eq!(p.value_f64(), f64::INFINITY);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("{\"shard\":0}"), None);
        assert_eq!(parse_line("not json"), None);
    }
}
